"""Partial-order reduction: action signatures, independence, providers.

The explorer identifies a state with the schedule prefix reaching it,
so everything POR needs to reason about an enabled action must be
captured *at the pause* and carried in the frontier record.  This
module computes that capture (:func:`describe_actions`) and the two
relations built on it:

* :func:`independent` — a conservative *conditional* commutation
  relation between two enabled actions, used by **sleep sets**.  Two
  actions commute when they belong to different actors, their cache-line
  footprints are disjoint, and at most one of them can reach the shared
  DRAM timing state (two same-cycle DRAM accesses serialise on the
  channel, so their order is visible in the canonical state).
* :func:`persistent_set` — a **stubborn-set style** provider over
  *processes* (an actor plus all its scheduled events and in-flight
  transactions).  Two processes conflict when their *future* line
  footprints intersect or both can still miss to DRAM; the provider
  returns the enabled actions of the smallest closed conflict component,
  which is a sound persistent set because every omitted process commutes
  with the chosen component now and in every future (their footprints
  never meet).

Action identity across replays is exact for events — the event queue's
insertion sequence number is deterministic for a given prefix, so
``(actor, seq, label)`` names the same event in parent and child
states — and structural for core steps (``(core id, next-uop index,
ROB/SB occupancy)``): a core untouched by independent actions presents
the identical signature at the child state.

The relations are deliberately conservative but still *heuristic* in
the sense of the reduction theorems they implement ("Lazy TSO
Reachability"; "A Better Reduction Theorem for Store Buffers"): the
repo does not trust them axiomatically.  ``tests/test_por.py`` pins
them two ways — a Hypothesis property that executes declared-independent
pairs in both orders and demands canonical-state equality, and a
differential suite that demands verdict and terminal-state agreement
with the unreduced BFS on every scenario and litmus program.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from ..common.addr import line_addr
from ..cpu.isa import OpKind

#: POR modes accepted by :func:`repro.modelcheck.explorer.explore`.
POR_MODES = ("off", "sleep", "persistent")

#: A described enabled action, JSON-plain so frontier records can be
#: spooled to disk:  (sig, lines, shared, progressing) where ``sig``
#: identifies the action across replays, ``lines`` is its sorted
#: may-touch line footprint, ``shared`` flags possible DRAM (global
#: timing) access and ``progressing`` says a core step is *guaranteed*
#: to make forward progress (see :func:`_surely_progresses` — the
#: staleness coupling makes non-progressing steps dependent on every
#: event).
ActionInfo = Tuple[Tuple, Tuple[int, ...], bool, bool]


def _l3_lines(system) -> Set[int]:
    return {line.addr for line in system.memsys.l3}


def _core_immediate_lines(system, cid: int) -> Set[int]:
    """Lines one ``core.step`` may touch: everything in flight in the
    core's structures plus the next fetch window of its trace."""
    core = system.cores[cid]
    lines: Set[int] = set()
    for entry in core.rob:
        if entry.uop.addr is not None:
            lines.add(line_addr(entry.uop.addr))
    for entry in core.sb._entries:
        lines.add(entry.line)
    lines |= set(core.mechanism.footprint_lines())
    fetch = core.config.fetch_width
    uops = core.trace.uops
    for uop in uops[core._next_uop:core._next_uop + fetch]:
        if uop.addr is not None:
            lines.add(line_addr(uop.addr))
    return set(core.mechanism.footprint_expand(lines))


def _core_future_lines(system, cid: int) -> Set[int]:
    """Every line core ``cid`` may touch from now to completion: the
    remaining trace plus everything already in flight on its behalf."""
    core = system.cores[cid]
    lines: Set[int] = set()
    for uop in core.trace.uops[core._next_uop:]:
        if uop.addr is not None:
            lines.add(line_addr(uop.addr))
    for entry in core.rob:
        if entry.uop.addr is not None:
            lines.add(line_addr(entry.uop.addr))
    for entry in core.sb._entries:
        lines.add(entry.line)
    lines |= set(core.mechanism.footprint_lines())
    for entry in system.events.pending():
        if entry.actor == cid:
            line = _label_line(entry.label)
            if line is not None:
                lines.add(line)
    for trans in system.memsys.inflight:
        if trans.requester == cid:
            lines.add(trans.addr)
    return set(core.mechanism.footprint_expand(lines))


def _surely_progresses(system, cid: int) -> bool:
    """Will ``core.step`` at this state definitely make progress?

    This matters because of the run loop's staleness bookkeeping: a
    step that makes *no* progress records the global fired-event
    counter (``stale_at[cid] = events_fired``), so its result depends
    on how many events fired before it — a genuine dependency between
    a non-progressing step and **every** event, regardless of lines.
    A guaranteed-progressing step resets the record to ``None`` under
    either order, restoring commutation.  Conservative: False means
    "might stall", which only costs reduction.
    """
    core = system.cores[cid]
    rob = core.rob
    if rob:
        head = rob[0]
        if (head.uop.kind is not OpKind.FENCE
                and head.complete_cycle is not None
                and head.complete_cycle <= system.cycle):
            return True     # commit retires at least the ROB head
    if (len(rob) < core.config.rob_entries
            and core._next_uop < len(core.trace.uops)):
        uop = core.trace.uops[core._next_uop]
        if uop.kind is OpKind.STORE and core.sb.full:
            return False
        if uop.kind is OpKind.LOAD and core.lq.full:
            return False
        return True         # dispatch inserts at least one micro-op
    return False


def _label_line(label: str) -> int:
    """Parse the line address out of an event label (``kind:0xADDR`` or
    ``kind:detail:0xADDR``); ``None`` when the label has no address."""
    _, _, tail = label.rpartition(":")
    try:
        return int(tail, 16)
    except ValueError:
        return None


def describe_actions(system, actions: Sequence[Tuple]) -> Tuple[ActionInfo, ...]:
    """Signatures + footprints for every enabled action at a pause."""
    l3 = _l3_lines(system)
    described: List[ActionInfo] = []
    for kind, target in actions:
        if kind == "event":
            line = _label_line(target.label)
            lines = () if line is None else (line,)
            head = target.label.split(":", 1)[0]
            # Only directory-bound work can reach DRAM, and only when
            # the line is not already backed by the L3 (the checked
            # machines never evict, so presence is permanent).
            shared = (line is None
                      or (head in ("dir", "busy", "poll")
                          and line not in l3))
            sig = ("event", target.actor, target.seq, target.label)
            described.append((sig, lines, shared, True))
        else:
            cid = target
            core = system.cores[cid]
            lines = _core_immediate_lines(system, cid)
            shared = any(line not in l3 for line in lines)
            sig = ("core", cid, core._next_uop, len(core.rob),
                   len(core.sb._entries))
            described.append((sig, tuple(sorted(lines)), shared,
                              _surely_progresses(system, cid)))
    return tuple(described)


def describe_for(mode: str):
    """The :class:`~repro.modelcheck.scheduler.ReplayScheduler`
    ``describe`` hook for a POR mode: captures action infos (and, for
    persistent mode, the reduced index set) while the paused system is
    still alive.  Returns ``None`` for mode ``off`` — no capture, no
    overhead, bit-identical exploration."""
    if mode == "off":
        return None
    if mode not in POR_MODES:
        raise ValueError(
            f"unknown POR mode {mode!r}; available: {', '.join(POR_MODES)}")

    def describe(system, actions):
        infos = describe_actions(system, actions)
        keep = (persistent_set(system, infos) if mode == "persistent"
                else tuple(range(len(infos))))
        return (infos, keep)

    return describe


def actor_of(info: ActionInfo):
    return info[0][1]


def independent(a: ActionInfo, b: ActionInfo) -> bool:
    """Conditional independence of two enabled actions (sleep sets).

    Conservative: unknown actors, shared-timing pairs, same-actor
    pairs, line-overlapping pairs, and event-versus-maybe-stalling-step
    pairs (the staleness coupling) are all dependent.
    """
    sig_a, lines_a, shared_a, progress_a = a
    sig_b, lines_b, shared_b, progress_b = b
    actor_a, actor_b = sig_a[1], sig_b[1]
    if actor_a is None or actor_b is None or actor_a == actor_b:
        return False
    if shared_a and shared_b:
        return False
    if not lines_a or not lines_b:
        return False
    return not (set(lines_a) & set(lines_b))


def commutes_exactly(a: ActionInfo, b: ActionInfo) -> bool:
    """Does the pair commute to *identical* canonical states?

    :func:`independent` is independence up to stuttering: an event
    re-enables every stale core and a step that stalls records how
    many events fired first, so a disjoint-line mixed pair can leave
    the two orders differing in the run loop's staleness bookkeeping
    (``sched_position``) — a difference that decays at the stale
    core's next no-op step and never touches caches, directory or
    mechanism state.  When both actions are events or guaranteed-
    progressing core steps even that bookkeeping agrees, and the two
    orders land on the *same* canonical key — the property the
    Hypothesis commutation test pins.
    """
    return independent(a, b) and a[3] and b[3]


def persistent_set(system, infos: Sequence[ActionInfo]) -> Tuple[int, ...]:
    """Indices of a persistent subset of the enabled actions.

    Processes (actors) are grouped into conflict components by
    future-footprint overlap; the provider returns every enabled action
    of the smallest component that has one.  Falls back to the full set
    whenever an action has no actor (nothing can be proven about it).
    """
    if any(actor_of(info) is None for info in infos):
        return tuple(range(len(infos)))
    futures: Dict[int, Set[int]] = {}
    # Conflict components must close over *all* processes, not only the
    # ones with an enabled action: a currently quiescent core with an
    # overlapping future is reachable through in-component actions and
    # must keep its component's actions together.
    everyone = list(range(len(system.cores)))
    for cid in everyone:
        futures[cid] = _core_future_lines(system, cid)
    parent = {cid: cid for cid in everyone}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(x: int, y: int) -> None:
        rx, ry = find(x), find(y)
        if rx != ry:
            parent[max(rx, ry)] = min(rx, ry)

    # Components are joined on future-footprint overlap only.  Two
    # line-disjoint components can still brush each other through the
    # DRAM channel's serialisation timing (their miss order shifts
    # ``_free_at`` and hence downstream event cycles), so serialising
    # components is commutation up to *timing*, not state equality —
    # like the staleness stuttering (:func:`commutes_exactly`), the
    # difference drains with the traffic and never reaches cache,
    # directory or mechanism state.  The sleep-set relation
    # (:func:`independent`) stays strict about shared-timing pairs;
    # this component rule is pinned by the differential suite.
    for i, x in enumerate(everyone):
        for y in everyone[i + 1:]:
            if futures[x] & futures[y]:
                union(x, y)
    by_component: Dict[int, List[int]] = {}
    for index, info in enumerate(infos):
        by_component.setdefault(find(actor_of(info)), []).append(index)
    # Any strict component works: cross-component pairs are disjoint in
    # every future and at most one component can reach DRAM (risky
    # processes were unioned), so omitted actions stay independent —
    # up to the staleness stuttering argued in :func:`commutes_exactly`
    # and docs/modelcheck.md — of the chosen component forever.
    eligible = [root for root, members in by_component.items()
                if len(members) < len(infos)]
    if not eligible:
        return tuple(range(len(infos)))
    # Deterministic choice: smallest action set, ties by component root.
    root = min(eligible, key=lambda r: (len(by_component[r]), r))
    return tuple(by_component[root])


def sleep_filter(sleep: FrozenSet[Tuple], infos: Sequence[ActionInfo],
                 explore_indices: Sequence[int]
                 ) -> Tuple[List[int], List[FrozenSet[Tuple]]]:
    """Apply sleep sets to the (possibly already persistent-reduced)
    branch list.

    Returns the branch indices to actually explore and, aligned with
    them, the sleep set each child inherits: entries of the incoming
    sleep set plus the signatures of earlier-explored siblings, filtered
    to those independent of the branch taken.
    """
    explored: List[int] = []
    child_sleeps: List[FrozenSet[Tuple]] = []
    taken_first: List[ActionInfo] = []
    for index in explore_indices:
        info = infos[index]
        if info[0] in sleep:
            continue
        inherited = set()
        for sig in sleep:
            # Sleep entries are signatures of actions described at an
            # ancestor; re-resolve them against the current action list
            # so footprints are current.  A signature no longer enabled
            # here stays in the sleep set only if some enabled action
            # carries it (otherwise it is dropped — conservative).
            match = next((i for i in infos if i[0] == sig), None)
            if match is not None and independent(match, info):
                inherited.add(sig)
        for earlier in taken_first:
            if independent(earlier, info):
                inherited.add(earlier[0])
        explored.append(index)
        child_sleeps.append(frozenset(inherited))
        taken_first.append(info)
    return explored, child_sleeps
