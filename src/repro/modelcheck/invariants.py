"""The invariant registry the model checker evaluates after every step.

Each invariant is a pure read-only predicate over the live system (plus
the visibility observer); it returns ``None`` when satisfied or a
human-readable message describing the violation.  Invariants must use
side-effect-free accessors only (:meth:`CacheArray.probe`,
:meth:`Directory.probe`, iteration) so that checking a state cannot
perturb LRU or statistics and thereby change the behaviour being
checked.

Mapping to the paper:

* ``swmr`` / ``directory-backing`` / ``inclusivity`` — the classic MESI
  single-writer-multiple-reader discipline TUS must preserve *for
  visible lines* (Section III-A: unauthorized lines are hidden from
  coherence, so they are exempt by definition);
* ``no-unauthorized`` — for the non-TUS mechanisms, a not-visible line
  (or a residual write mask / ready bit) anywhere is itself a bug;
* ``tus-sync`` — the WOQ and the L1D must agree line-for-line on the
  set of unauthorized lines, their masks, and their ready bits
  (Section IV's Figure 6 bookkeeping);
* ``store-order`` — Store->Store order of x86-TSO over the publication
  events recorded so far (Section III-B's atomic groups are the only
  permitted coarsening);
* ``wait-graph`` — acyclicity of the delay wait-for graph.  Section
  III-C argues every chain of DELAY answers follows strictly increasing
  lex order, so a cycle of live delays is precisely the cross-core
  livelock the lex rule exists to exclude.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..common.errors import ReproError, TSOViolationError
from ..cpu.trace import Trace
from ..mem.cacheline import State
from ..tso.observer import VisibilityObserver


class InvariantViolation(ReproError):
    """An invariant failed on a reachable state."""

    def __init__(self, invariant: str, message: str,
                 trace: Tuple[str, ...] = ()) -> None:
        super().__init__(f"{invariant}: {message}")
        self.invariant = invariant
        self.message = message
        self.trace = trace


@dataclass
class CheckContext:
    """Everything an invariant may inspect."""

    system: object                    # repro.sim.system.System
    traces: Sequence[Trace]
    observer: VisibilityObserver


#: name -> predicate(ctx) returning None or a violation message.
INVARIANTS: Dict[str, Callable[[CheckContext], Optional[str]]] = {}


def invariant(name: str):
    def register(fn):
        INVARIANTS[name] = fn
        return fn
    return register


def _visible_state(port, addr: int) -> State:
    """Strongest coherence state core ``port`` holds for ``addr`` that is
    visible to the protocol (not-visible L1D lines are hidden)."""
    strongest = State.I
    line = port.l1d.probe(addr)
    if line is not None and not line.not_visible:
        strongest = line.state
    l2line = port.l2.probe(addr)
    if l2line is not None and l2line.state > strongest:
        strongest = l2line.state
    return strongest


def _tracked_lines(system) -> List[int]:
    addrs = set()
    for port in system.memsys.ports:
        for line in port.l1d:
            addrs.add(line.addr)
        for line in port.l2:
            addrs.add(line.addr)
    for line in system.memsys.l3:
        addrs.add(line.addr)
    # entries() spans every directory home, so on a sharded machine the
    # invariants quantify over all shards, not just shard 0.
    for entry in system.memsys.directory.entries():
        addrs.add(entry.addr)
    return sorted(addrs)


@invariant("swmr")
def check_swmr(ctx: CheckContext) -> Optional[str]:
    """Single-Writer-Multiple-Reader over protocol-visible copies."""
    system = ctx.system
    for addr in _tracked_lines(system):
        states = [(cid, _visible_state(port, addr))
                  for cid, port in enumerate(system.memsys.ports)]
        writers = [cid for cid, st in states if st.writable]
        readers = [cid for cid, st in states if st.valid]
        if len(writers) > 1:
            return (f"line {addr:#x} writable at cores "
                    f"{writers} simultaneously")
        if writers and len(readers) > 1:
            return (f"line {addr:#x} writable at core {writers[0]} "
                    f"while cores {readers} hold valid copies")
    return None


@invariant("directory-backing")
def check_directory_backing(ctx: CheckContext) -> Optional[str]:
    """A visible writable copy implies the directory tracks the line and
    (outside an in-flight transaction) names that core as owner.
    ``peek`` routes to the home shard owning the line, so the check is
    exact on sharded directories too."""
    system = ctx.system
    directory = system.memsys.directory
    for cid, port in enumerate(system.memsys.ports):
        for addr in _tracked_lines(system):
            if not _visible_state(port, addr).writable:
                continue
            entry = directory.peek(addr)
            if entry is None:
                return (f"core {cid} holds {addr:#x} writable but the "
                        f"directory does not track the line")
            if not entry.busy and entry.owner != cid:
                return (f"core {cid} holds {addr:#x} writable but the "
                        f"directory owner is {entry.owner}")
    return None


@invariant("inclusivity")
def check_inclusivity(ctx: CheckContext) -> Optional[str]:
    """Every visible valid L1D line is backed by a valid private-L2 copy
    (the inclusive hierarchy TUS's NACK-and-refresh rule relies on)."""
    for cid, port in enumerate(ctx.system.memsys.ports):
        for line in port.l1d:
            if not line.state.valid or line.not_visible:
                continue
            l2line = port.l2.probe(line.addr)
            if l2line is None or not l2line.state.valid:
                return (f"core {cid}: L1D holds {line.addr:#x} "
                        f"({line.state.name}) without a valid L2 copy")
    return None


@invariant("no-unauthorized")
def check_no_unauthorized(ctx: CheckContext) -> Optional[str]:
    """Non-TUS mechanisms must never produce unauthorized state."""
    for cid, port in enumerate(ctx.system.memsys.ports):
        for level, cache in (("L1D", port.l1d), ("L2", port.l2)):
            for line in cache:
                if line.not_visible or line.ready or line.write_mask:
                    return (f"core {cid}: {level} line {line.addr:#x} "
                            f"carries unauthorized state (not_visible="
                            f"{line.not_visible}, ready={line.ready}, "
                            f"mask={line.write_mask:#x})")
    return None


@invariant("tus-sync")
def check_tus_sync(ctx: CheckContext) -> Optional[str]:
    """WOQ entries and not-visible L1D lines must be in exact 1:1
    correspondence, with matching masks and ready bits."""
    for cid, core in enumerate(ctx.system.cores):
        controller = getattr(core.mechanism, "controller", None)
        if controller is None:
            continue
        port = core.port
        nv_lines = {line.addr: line for line in port.l1d if line.not_visible}
        woq_lines = {entry.line: entry for entry in controller.woq}
        if set(nv_lines) != set(woq_lines):
            only_l1 = sorted(set(nv_lines) - set(woq_lines))
            only_woq = sorted(set(woq_lines) - set(nv_lines))
            return (f"core {cid}: not-visible L1D lines and WOQ disagree "
                    f"(L1D-only {[hex(a) for a in only_l1]}, "
                    f"WOQ-only {[hex(a) for a in only_woq]})")
        for addr, entry in woq_lines.items():
            line = nv_lines[addr]
            if line.write_mask != entry.mask:
                return (f"core {cid}: {addr:#x} mask mismatch (L1D "
                        f"{line.write_mask:#x} vs WOQ {entry.mask:#x})")
            if line.ready != entry.ready:
                return (f"core {cid}: {addr:#x} ready mismatch (L1D "
                        f"{line.ready} vs WOQ {entry.ready})")
            if entry.ready and line.state != State.M:
                return (f"core {cid}: {addr:#x} is ready but the L1D "
                        f"state is {line.state.name}, not M")
            if not entry.ready and line.state.writable:
                return (f"core {cid}: {addr:#x} holds write permission "
                        f"({line.state.name}) but is not marked ready")
        for level, cache in (("L2", port.l2), ("L3", ctx.system.memsys.l3)):
            for line in cache:
                if line.not_visible:
                    return (f"core {cid}: {level} line {line.addr:#x} is "
                            f"marked not-visible (only the L1D may hide "
                            f"lines)")
    return None


@invariant("store-order")
def check_store_order(ctx: CheckContext) -> Optional[str]:
    """Store->Store order over the publications recorded so far."""
    for cid, trace in enumerate(ctx.traces):
        try:
            ctx.observer.check_store_store_order(cid, trace)
        except TSOViolationError as exc:
            return str(exc)
    return None


@invariant("wait-graph")
def check_wait_graph(ctx: CheckContext) -> Optional[str]:
    """Acyclicity of the live delay wait-for graph.

    An edge ``requester -> delayer`` exists for every in-flight
    transaction whose last snoop was answered DELAY, provided the
    delayer's mechanism still holds an unpublished store to the line
    (once published, the pending re-poll will succeed, so the edge is
    no longer a dependency).  A cycle means a set of cores each waiting
    for another to publish first — the cross-core livelock Section
    III-C's lex order exists to exclude.
    """
    system = ctx.system
    edges: Dict[int, set] = {}
    detail = {}
    for trans in system.memsys.inflight:
        if trans.waiting_on is None:
            continue
        delayer = system.cores[trans.waiting_on].mechanism
        if not delayer.pending_publication(trans.addr):
            continue   # already published; the re-poll will resolve
        edges.setdefault(trans.requester, set()).add(trans.waiting_on)
        detail[(trans.requester, trans.waiting_on)] = trans.addr
    cycle = _find_cycle(edges)
    if cycle is None:
        return None
    hops = ", ".join(
        f"core {a} waits for core {b} (line "
        f"{detail[(a, b)]:#x})"
        for a, b in zip(cycle, cycle[1:] + cycle[:1]))
    return f"delay cycle: {hops}"


def _find_cycle(edges: Dict[int, set]) -> Optional[List[int]]:
    """Return one cycle (as a node list) in a directed graph, or None."""
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {node: WHITE for node in
              set(edges) | {n for targets in edges.values() for n in targets}}
    stack: List[int] = []

    def visit(node: int) -> Optional[List[int]]:
        colour[node] = GREY
        stack.append(node)
        for nxt in sorted(edges.get(node, ())):
            if colour[nxt] == GREY:
                return stack[stack.index(nxt):]
            if colour[nxt] == WHITE:
                found = visit(nxt)
                if found is not None:
                    return found
        stack.pop()
        colour[node] = BLACK
        return None

    for node in sorted(colour):
        if colour[node] == WHITE:
            found = visit(node)
            if found is not None:
                return found
    return None
