"""Randomised swarm exploration (``repro check --fuzz``).

For state spaces too large to exhaust (3 cores, longer programs) the
checker falls back to seeded random walks: each run draws every
decision uniformly from the enabled actions.  The per-run seed is
derived from the base seed and the run index, so any violating walk is
reproducible, and its recorded choice sequence is minimised through
the same machinery as an exhaustive counterexample.
"""

from __future__ import annotations

import random
import time
from typing import Optional

from ..models import DEFAULT_MODEL
from .explorer import (DEFAULT_MAX_CYCLES, CheckReport, RunOutcome, _minimise,
                       _run, _shape)
from .scenarios import get_scenario
from .scheduler import RandomScheduler, ReplayScheduler


def fuzz(scenario_name: str, mechanism: str, *, cores: int = 2,
         lines: int = 2, runs: int = 100, seed: int = 0,
         unsound: bool = False, max_cycles: int = DEFAULT_MAX_CYCLES,
         machine: Optional[dict] = None,
         model: str = DEFAULT_MODEL) -> CheckReport:
    """Run ``runs`` random schedules; minimise the first violation."""
    scenario = get_scenario(scenario_name)
    cores, lines = _shape(scenario, cores, lines)
    start = time.monotonic()
    report = CheckReport(scenario.name, mechanism, cores, lines, mode="fuzz",
                         model=model)

    def runner(schedule, pause: bool) -> RunOutcome:
        report.executions += 1
        inner = ReplayScheduler(schedule, pause=pause)
        return _run(scenario, mechanism, inner, cores=cores, lines=lines,
                    unsound=unsound, max_cycles=max_cycles, machine=machine,
                    model=model)

    outcomes = set()
    for index in range(runs):
        rng = random.Random(f"{seed}:{index}")
        inner = RandomScheduler(rng)
        report.executions += 1
        outcome = _run(scenario, mechanism, inner, cores=cores, lines=lines,
                       unsound=unsound, max_cycles=max_cycles,
                       machine=machine, model=model)
        if outcome.kind == "violation":
            report.violation = _minimise(outcome, runner, scenario.name,
                                         mechanism, cores, lines, unsound,
                                         model)
            break
        outcomes.add(outcome.committed)
        report.terminal_states += 1
    report.unique_states = len(outcomes)
    report.truncated = True   # sampling never proves exhaustiveness
    report.complete = False
    report.wall_seconds = time.monotonic() - start
    return report
