"""Distributed frontier expansion: N worker processes, one spool.

The durable frontier (:class:`~repro.modelcheck.frontier.DiskFrontier`)
already makes every queue transition an atomic rename and every
visited/terminal/proviso record a content-addressed file, so scaling a
check out is just *starting more drain loops on the same spool*:

* workers claim pending records by rename — exactly one wins each;
* visited claims race on first-writer-wins creation, which is the
  cross-worker visited-set merge (a state expanded by worker A is
  pruned by worker B the moment B replays into it);
* the first violation wins ``violation.json`` and every drain loop
  exits at its next iteration;
* a worker with an empty pending directory idles while *any* worker
  still holds a running record (its expansion may push more work) and
  exits once pending and running are both empty;
* periodically each worker folds finished visited claims into a
  segment file (:meth:`DiskFrontier.compact_visited`) to bound the
  spool's file count.

The driver (:func:`distributed_explore`) seeds the spool, runs the
fleet, then *locally* drains whatever a crashed worker may have left
running and minimises the violation if one was found — so its report
is exactly an :func:`~repro.modelcheck.explorer.explore` report, just
computed by many hands.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from typing import Optional

from ..models import DEFAULT_MODEL
from .explorer import (DEFAULT_MAX_CYCLES, CheckReport, _run, _shape,
                       drain_frontier, explore, job_meta, make_record)
from .frontier import DiskFrontier
from .por import describe_for
from .scenarios import get_scenario
from .scheduler import ReplayScheduler

#: How many expansions between a worker's visited-set compactions.
COMPACT_EVERY = 200


def _make_runner(meta: dict, report: CheckReport):
    scenario = get_scenario(meta["scenario"])
    describe = describe_for(meta["por"])

    def runner(schedule, pause: bool):
        report.executions += 1
        inner = ReplayScheduler(schedule, pause=pause,
                                describe=describe if pause else None)
        return _run(scenario, meta["mechanism"], inner,
                    cores=meta["cores"], lines=meta["lines"],
                    unsound=meta["unsound"],
                    max_cycles=meta["max_cycles"],
                    machine=meta["machine"], model=meta["model"])

    return runner


def worker_main(spool: str, worker_id: int) -> None:
    """Drain one spool until the check is finished (worker entry
    point; every parameter of the check comes from the spool's
    ``meta.json``)."""
    store = DiskFrontier(spool)
    meta = store.meta()
    if meta is None:
        return
    report = CheckReport(meta["scenario"], meta["mechanism"],
                         meta["cores"], meta["lines"], mode="exhaustive",
                         model=meta["model"], por=meta["por"])
    base_runner = _make_runner(meta, report)
    since_compact = [0]

    def runner(schedule, pause: bool):
        since_compact[0] += 1
        if since_compact[0] >= COMPACT_EVERY:
            since_compact[0] = 0
            store.compact_visited()
        return base_runner(schedule, pause)

    def record_violation(outcome) -> None:
        store.set_violation({"invariant": outcome.invariant,
                             "message": outcome.message,
                             "taken": list(outcome.taken)})

    idle = [0.0]

    def wait() -> bool:
        # Pending is empty but someone still runs: their expansion may
        # push children.  Idle briefly; give up after a stale-claim
        # timeout so a dead sibling cannot wedge the fleet (the driver
        # recovers its running records afterwards).
        if idle[0] > 30.0:
            return False
        time.sleep(0.02)
        idle[0] += 0.02
        return True

    drain_frontier(store, runner, report, por=meta["por"],
                   max_depth=meta["max_depth"],
                   max_states=meta["max_states"],
                   on_violation=record_violation, wait=wait)
    store.compact_visited()
    store.add_stats(f"w{worker_id}-{os.getpid()}", report.executions)


def distributed_explore(scenario_name: str, mechanism: str, *,
                        spool, workers: int = 2, cores: int = 2,
                        lines: int = 2, max_depth: int = 64,
                        max_states: int = 100_000,
                        max_cycles: int = DEFAULT_MAX_CYCLES,
                        unsound: bool = False,
                        machine: Optional[dict] = None,
                        model: str = DEFAULT_MODEL,
                        por: str = "sleep") -> CheckReport:
    """Shard one check's frontier expansion across ``workers``
    processes sharing ``spool``; returns the merged report."""
    start = time.monotonic()
    scenario = get_scenario(scenario_name)
    cores, lines = _shape(scenario, cores, lines)
    store = DiskFrontier(spool)
    store.seed(job_meta(scenario_name, mechanism, cores=cores, lines=lines,
                        max_depth=max_depth, max_states=max_states,
                        max_cycles=max_cycles, unsound=unsound,
                        machine=machine, model=model, por=por),
               make_record(()))
    ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods()
                         else "spawn")
    fleet = [ctx.Process(target=worker_main, args=(str(spool), wid),
                         daemon=True)
             for wid in range(max(1, workers))]
    for proc in fleet:
        proc.start()
    for proc in fleet:
        proc.join()
    # A killed worker leaves records in running/; the final in-process
    # explore() recovers and drains them (a completed spool drains to
    # nothing instantly), reconstructs the violation if one was found,
    # and assembles the merged counters from the spool.
    report = explore(scenario_name, mechanism, cores=cores, lines=lines,
                     max_depth=max_depth, max_states=max_states,
                     max_cycles=max_cycles, unsound=unsound,
                     machine=machine, model=model, por=por, store=store)
    report.wall_seconds = time.monotonic() - start
    return report
