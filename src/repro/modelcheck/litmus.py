"""Bridge: the cross-model litmus corpus as model-check scenarios.

Every :mod:`repro.models.corpus` program is a list of per-thread
Store/Load/Fence sequences over the abstract addresses X/Y/Z.  This
module lowers each to a model-check scenario named ``lit:<NAME>``:
threads become cores, abstract addresses become consecutive scenario
cache lines (ascending lex order, distinct directory/cache sets — the
same discipline as the hand-written scenarios), and the shape is
*fixed* (``fixed_cores``/``fixed_lines``): an IRIW check is a 4-core
check no matter what ``--cores`` says.

The corpus verdicts (allowed/forbidden outcomes) are *not* re-checked
here — the model layer owns those.  What the model checker adds is
protocol-level assurance: every interleaving of the litmus program on
the real simulator upholds SWMR, TUS WOQ/L1D sync, deadlock freedom
and friends.  The 4-thread shapes (IRIW, IRIW+fences) are exactly the
checks that were infeasible without partial-order reduction.
"""

from __future__ import annotations

from typing import Dict, List

from ..cpu.isa import UOp, fence, load, store
from ..models.corpus import corpus
from .scenarios import Scenario, scenario_lines

#: Scenario-name prefix selecting a corpus program.
PREFIX = "lit:"


def _lower(program) -> List[List[UOp]]:
    addr_map = {addr: line for addr, line in
                zip(program.addresses(), scenario_lines(
                    len(program.addresses())))}
    lowered: List[List[UOp]] = []
    for ops in program.threads:
        uops: List[UOp] = []
        for op in ops:
            kind = type(op).__name__
            if kind == "Store":
                uops.append(store(addr_map[op.addr]))
            elif kind == "Load":
                uops.append(load(addr_map[op.addr]))
            else:
                uops.append(fence())
        lowered.append(uops)
    return lowered


def _build_fn(entry):
    def build(cores: int, lines: int) -> List[List[UOp]]:
        return _lower(entry.program)
    return build


def litmus_scenarios() -> Dict[str, Scenario]:
    """All corpus programs as fixed-shape scenarios, keyed by
    ``lit:<NAME>``."""
    scenarios: Dict[str, Scenario] = {}
    for entry in corpus():
        name = PREFIX + entry.name
        scenarios[name] = Scenario(
            name=name,
            description=f"litmus corpus: {entry.description}",
            build_fn=_build_fn(entry),
            fixed_cores=len(entry.program.threads),
            fixed_lines=len(entry.program.addresses()))
    return scenarios


def litmus_names() -> List[str]:
    return sorted(litmus_scenarios())
