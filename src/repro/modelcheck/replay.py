"""Deterministic replay of a counterexample schedule.

A minimised schedule from the explorer (or the fuzzer) plus the
scenario coordinates fully determine an execution: decision points are
replayed from the recorded choices and everything between them is the
simulator's own deterministic order.  The generated pytest cases (see
:meth:`repro.modelcheck.explorer.Violation.as_pytest`) call
:func:`replay` and assert the violation reproduces.
"""

from __future__ import annotations

from typing import Sequence

from ..models import DEFAULT_MODEL
from .explorer import DEFAULT_MAX_CYCLES, RunOutcome, run_schedule


def replay(scenario: str, mechanism: str, schedule: Sequence[int], *,
           cores: int = 2, lines: int = 2, unsound: bool = False,
           max_cycles: int = DEFAULT_MAX_CYCLES,
           model: str = DEFAULT_MODEL) -> RunOutcome:
    """Re-execute ``schedule`` and return the outcome.

    The outcome's ``kind`` is ``"violation"`` when the schedule still
    triggers an invariant failure (with ``invariant``/``message``
    filled in), or ``"done"`` when the system runs to completion.
    """
    return run_schedule(scenario, mechanism, tuple(schedule), cores=cores,
                        lines=lines, unsound=unsound, max_cycles=max_cycles,
                        pause=False, model=model)
