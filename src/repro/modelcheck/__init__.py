"""Exhaustive protocol model checking for the MESI + TUS stack.

This package drives the *real* simulator (``repro.sim.System`` with the
production coherence, core, and mechanism code — not a re-specification)
through every reachable interleaving of a small concurrent scenario and
checks protocol invariants after every atomic step.  The pieces:

* :mod:`~repro.modelcheck.scheduler` — controllable schedulers plugged
  into :meth:`repro.sim.system.System.run_controlled`;
* :mod:`~repro.modelcheck.state` — canonical state hashing with
  symmetric-core reduction;
* :mod:`~repro.modelcheck.invariants` — the invariant registry (SWMR,
  directory backing, inclusivity, TUS WOQ/L1D sync, store order,
  wait-for-graph acyclicity);
* :mod:`~repro.modelcheck.scenarios` — small litmus-style concurrent
  programs and the reduced machine configuration they run on;
* :mod:`~repro.modelcheck.explorer` — frontier BFS over schedule
  prefixes with budgets and counterexample minimisation;
* :mod:`~repro.modelcheck.replay` — deterministic re-execution of a
  counterexample schedule (what the generated pytest cases call);
* :mod:`~repro.modelcheck.fuzz` — randomised swarm exploration for
  state spaces too large to exhaust.
"""

from .explorer import CheckReport, Violation, explore, run_schedule
from .fuzz import fuzz
from .invariants import INVARIANTS, InvariantViolation
from .replay import replay
from .scenarios import SCENARIOS, Scenario, check_config, get_scenario
from .scheduler import (DefaultScheduler, FrontierReached, RandomScheduler,
                        ReplayScheduler)

__all__ = [
    "CheckReport", "Violation", "explore", "run_schedule", "fuzz",
    "INVARIANTS", "InvariantViolation", "replay",
    "SCENARIOS", "Scenario", "check_config", "get_scenario",
    "DefaultScheduler", "FrontierReached", "RandomScheduler",
    "ReplayScheduler",
]
