"""Exhaustive protocol model checking for the MESI + TUS stack.

This package drives the *real* simulator (``repro.sim.System`` with the
production coherence, core, and mechanism code — not a re-specification)
through every reachable interleaving of a small concurrent scenario and
checks protocol invariants after every atomic step.  The pieces:

* :mod:`~repro.modelcheck.scheduler` — controllable schedulers plugged
  into :meth:`repro.sim.system.System.run_controlled`;
* :mod:`~repro.modelcheck.state` — canonical state hashing with
  symmetric-core reduction;
* :mod:`~repro.modelcheck.invariants` — the invariant registry (SWMR,
  directory backing, inclusivity, TUS WOQ/L1D sync, store order,
  wait-for-graph acyclicity);
* :mod:`~repro.modelcheck.scenarios` — small litmus-style concurrent
  programs and the reduced machine configuration they run on;
* :mod:`~repro.modelcheck.explorer` — frontier BFS over schedule
  prefixes with budgets and counterexample minimisation;
* :mod:`~repro.modelcheck.replay` — deterministic re-execution of a
  counterexample schedule (what the generated pytest cases call);
* :mod:`~repro.modelcheck.fuzz` — randomised swarm exploration for
  state spaces too large to exhaust;
* :mod:`~repro.modelcheck.por` — partial-order reduction (sleep sets
  and a persistent-set provider over action footprints);
* :mod:`~repro.modelcheck.frontier` — in-memory and durable
  (spool-dir) frontier stores with checkpoint/resume;
* :mod:`~repro.modelcheck.distributed` — sharding one check's frontier
  expansion across a worker fleet over a shared spool;
* :mod:`~repro.modelcheck.litmus` — the cross-model litmus corpus
  lowered to fixed-shape scenarios (``lit:IRIW`` etc.).
"""

from .distributed import distributed_explore
from .explorer import CheckReport, Violation, explore, run_schedule
from .frontier import DiskFrontier, MemoryFrontier
from .fuzz import fuzz
from .invariants import INVARIANTS, InvariantViolation
from .litmus import litmus_names, litmus_scenarios
from .por import POR_MODES
from .replay import replay
from .scenarios import SCENARIOS, Scenario, check_config, get_scenario
from .scheduler import (DefaultScheduler, FrontierReached, RandomScheduler,
                        ReplayScheduler)

__all__ = [
    "CheckReport", "Violation", "explore", "run_schedule", "fuzz",
    "INVARIANTS", "InvariantViolation", "replay",
    "SCENARIOS", "Scenario", "check_config", "get_scenario",
    "DefaultScheduler", "FrontierReached", "RandomScheduler",
    "ReplayScheduler", "POR_MODES", "distributed_explore",
    "DiskFrontier", "MemoryFrontier", "litmus_names", "litmus_scenarios",
]
