"""Structured forward-progress diagnostics.

When a watchdog fires, a bare "no progress for N cycles" string answers
none of the questions that matter: which core is stuck, on what, who is
waiting for whom, and whether the event queue still holds anything that
could unblock them.  :class:`ProgressDump` captures that state — per-core
SB/ROB/WOQ heads, unauthorized (not-visible) L1D lines, directory busy
entries, in-flight transactions, the delay wait-for graph, and a pending
event summary — as plain JSON-serialisable data, so a deadlock report
can be rendered by the CLI, attached to a failure manifest, and diffed
between a failing and a passing seed.

The dump rides on :class:`~repro.common.errors.DeadlockError` (its
``dump`` attribute); :meth:`ProgressDump.capture` is called at every
watchdog raise site in :mod:`repro.sim.system`.

Everything here is read-only introspection: capturing a dump must not
perturb the system (no stats, no LRU touches — directory state is read
via ``peek``-equivalent raw structures).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


def _find_cycle(edges: Dict[int, int]) -> Optional[List[int]]:
    """Return one cycle in the functional graph ``waiter -> waitee``.

    Same walk the wait-graph invariant uses (each node has at most one
    outgoing edge, so following successors either leaves the graph or
    loops); duplicated here because importing :mod:`repro.modelcheck`
    from the simulator would be circular.
    """
    for start in edges:
        seen = []
        node = start
        while node in edges and node not in seen:
            seen.append(node)
            node = edges[node]
        if node in seen:
            return seen[seen.index(node):]
    return None


#: Cap on listed entries per section so a dump of a big system stays
#: readable; counts are always exact, only listings truncate.
_MAX_ITEMS = 16


@dataclass
class ProgressDump:
    """A snapshot of everything relevant to "why is nothing happening".

    All fields are JSON-plain (dicts/lists/ints/strings/None) so the
    dump round-trips through :meth:`to_dict`/:meth:`from_dict` and can
    be embedded in failure manifests verbatim.
    """

    reason: str                      # no-progress | watchdog | cycle-budget
    cycle: int
    workload: str
    mechanism: str
    message: str = ""
    cores: List[dict] = field(default_factory=list)
    mshrs: List[dict] = field(default_factory=list)
    directory: List[dict] = field(default_factory=list)
    inflight: List[dict] = field(default_factory=list)
    wait_edges: List[dict] = field(default_factory=list)
    wait_cycle: Optional[List[int]] = None
    events: dict = field(default_factory=dict)

    # -- construction -------------------------------------------------------
    @classmethod
    def capture(cls, system, reason: str, message: str = "") -> "ProgressDump":
        dump = cls(reason=reason, cycle=system.cycle,
                   workload=system.workload,
                   mechanism=system.config.mechanism, message=message)
        for core in system.cores:
            dump.cores.append(cls._core_state(core))
        for port in system.memsys.ports:
            dump.mshrs.append(cls._mshr_state(port))
        dump.directory = cls._directory_state(system.memsys.directory)
        dump.inflight = [cls._transaction_state(t)
                         for t in system.memsys.inflight[:_MAX_ITEMS]]
        dump._capture_wait_graph(system)
        dump.events = cls._event_state(system.events)
        return dump

    @staticmethod
    def _core_state(core) -> dict:
        sb_entries = core.sb._entries
        head = sb_entries[0] if sb_entries else None
        rob_head = core.rob[0] if core.rob else None
        state = {
            "core": core.core_id,
            "committed": core._committed,
            "next_uop": core._next_uop,
            "trace_len": core._trace_len,
            "done": core.is_done(),
            "last_stall": core.last_stall.name.lower(),
            "wake_cycle": core.wake_cycle,
            "rob": {
                "occupancy": len(core.rob),
                "head": None if rob_head is None else {
                    "kind": rob_head.uop.kind.name.lower(),
                    "addr": rob_head.uop.addr,
                    "waiting_mem": rob_head.waiting_mem,
                    "complete_cycle": rob_head.complete_cycle,
                },
            },
            "sb": {
                "occupancy": len(sb_entries),
                "capacity": core.sb.capacity,
                "committed": sum(1 for e in sb_entries if e.committed),
                "head": None if head is None else {
                    "seq": head.seq, "line": head.line,
                    "committed": head.committed,
                },
            },
            "lq_occupancy": len(core.lq),
        }
        state["mechanism"] = ProgressDump._mechanism_state(core)
        return state

    @staticmethod
    def _mechanism_state(core) -> dict:
        mech = core.mechanism
        state: dict = {"drained": mech.drained()}
        wcb = getattr(mech, "wcb", None)
        if wcb is not None:
            state["wcb"] = [{"line": e.addr, "group": e.group}
                            for e in list(wcb.buffers)[:_MAX_ITEMS]]
        controller = getattr(mech, "controller", None)
        woq = getattr(controller, "woq", None)
        if woq is not None:
            state["woq"] = [
                {"line": e.line, "group": e.group, "ready": e.ready,
                 "can_cycle": e.can_cycle, "deferred": e.deferred,
                 "request_outstanding": e.request_outstanding}
                for e in list(woq)[:_MAX_ITEMS]]
        unauthorized = [line.addr for line in core.port.l1d
                        if line.not_visible]
        if unauthorized:
            state["unauthorized_lines"] = sorted(unauthorized)[:_MAX_ITEMS]
            state["unauthorized_count"] = len(unauthorized)
        return state

    @staticmethod
    def _mshr_state(port) -> dict:
        entries = port.mshrs._entries
        return {
            "core": port.core_id,
            "occupancy": len(entries),
            "capacity": port.mshrs.capacity,
            "parked": len(port._pending),
            "lines": [{"line": e.addr, "write": e.is_write}
                      for e in list(entries.values())[:_MAX_ITEMS]],
        }

    @staticmethod
    def _directory_state(directory) -> List[dict]:
        """Busy entries from *every* home shard.  The listing cap is
        per shard, so on a sharded directory the shard that is actually
        wedged can never be crowded out of the dump by a noisy
        neighbour."""
        listed = []
        for shard_id, shard in enumerate(directory.shards):
            busy = [entry for entry in shard.entries() if entry.busy]
            listed.extend(
                {"shard": shard_id, "line": e.addr, "owner": e.owner,
                 "sharers": sorted(e.sharers)}
                for e in busy[:_MAX_ITEMS])
        return listed

    @staticmethod
    def _transaction_state(trans) -> dict:
        return {"req": trans.req.value, "line": trans.addr,
                "requester": trans.requester, "issued": trans.issued_cycle,
                "polls": trans.polls, "retries": trans.retries,
                "waiting_on": trans.waiting_on}

    def _capture_wait_graph(self, system) -> None:
        """Delay edges requester -> delaying core, as the wait-graph
        invariant defines them, plus whether each edge is still *live*
        (the delaying core genuinely has a pending publication)."""
        edges: Dict[int, int] = {}
        for trans in system.memsys.inflight:
            if trans.waiting_on is None:
                continue
            target = trans.waiting_on
            live = system.cores[target].mechanism.pending_publication(
                trans.addr)
            self.wait_edges.append(
                {"from": trans.requester, "to": target,
                 "line": trans.addr, "live": live})
            edges[trans.requester] = target
        self.wait_cycle = _find_cycle(edges)

    @staticmethod
    def _event_state(events) -> dict:
        # pending() is unordered (bucketed queue); sort so the dump is
        # deterministic for a given machine state.
        pending = sorted(events.pending(), key=lambda e: (e.cycle, e.seq))
        return {
            "count": len(pending),
            "next_cycle": events.next_cycle(),
            "head": [{"cycle": e.cycle, "label": e.label, "actor": e.actor}
                     for e in pending[:8]],
        }

    # -- serialisation ------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "reason": self.reason, "cycle": self.cycle,
            "workload": self.workload, "mechanism": self.mechanism,
            "message": self.message, "cores": self.cores,
            "mshrs": self.mshrs, "directory": self.directory,
            "inflight": self.inflight, "wait_edges": self.wait_edges,
            "wait_cycle": self.wait_cycle, "events": self.events,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProgressDump":
        return cls(**data)

    # -- rendering ----------------------------------------------------------
    def render(self) -> str:
        out = [f"== progress dump: {self.reason} at cycle {self.cycle} "
               f"({self.workload}/{self.mechanism}) =="]
        if self.message:
            out.append(self.message)
        for core in self.cores:
            rob, sb = core["rob"], core["sb"]
            line = (f"core {core['core']}: committed {core['committed']}"
                    f"/{core['trace_len']} uops, rob {rob['occupancy']}, "
                    f"sb {sb['occupancy']}/{sb['capacity']} "
                    f"({sb['committed']} committed), "
                    f"stall={core['last_stall']}, wake={core['wake_cycle']}")
            if core["done"]:
                line += " [done]"
            out.append(line)
            head = sb["head"]
            if head is not None:
                out.append(f"  sb head: seq {head['seq']} "
                           f"line {head['line']:#x}"
                           + (" committed" if head["committed"] else ""))
            mech = core["mechanism"]
            for entry in mech.get("woq", ()):
                out.append(
                    f"  woq: line {entry['line']:#x} group {entry['group']}"
                    f" ready={entry['ready']} deferred={entry['deferred']}"
                    f" outstanding={entry['request_outstanding']}")
            if "unauthorized_count" in mech:
                lines = ", ".join(f"{a:#x}"
                                  for a in mech["unauthorized_lines"])
                out.append(f"  unauthorized lines "
                           f"({mech['unauthorized_count']}): {lines}")
        for mshr in self.mshrs:
            if mshr["occupancy"] or mshr["parked"]:
                out.append(f"mshr core {mshr['core']}: "
                           f"{mshr['occupancy']}/{mshr['capacity']} in "
                           f"flight, {mshr['parked']} parked")
        for entry in self.directory:
            sharers = ",".join(map(str, entry["sharers"])) or "-"
            # Dumps captured before directories were sharded have no
            # shard key; render those as shard 0.
            out.append(f"directory busy: shard {entry.get('shard', 0)} "
                       f"line {entry['line']:#x} "
                       f"owner={entry['owner']} sharers={sharers}")
        for trans in self.inflight:
            out.append(f"inflight: {trans['req']} line {trans['line']:#x} "
                       f"by core {trans['requester']} "
                       f"(polls={trans['polls']}, retries={trans['retries']},"
                       f" waiting_on={trans['waiting_on']})")
        for edge in self.wait_edges:
            live = "live" if edge["live"] else "stale"
            out.append(f"wait: core {edge['from']} -> core {edge['to']} "
                       f"on line {edge['line']:#x} [{live}]")
        if self.wait_cycle:
            out.append("WAIT-FOR CYCLE: "
                       + " -> ".join(map(str, self.wait_cycle)))
        ev = self.events
        out.append(f"events: {ev.get('count', 0)} pending, "
                   f"next at {ev.get('next_cycle')}")
        for entry in ev.get("head", ()):
            out.append(f"  @{entry['cycle']}: {entry['label']} "
                       f"(core {entry['actor']})")
        return "\n".join(out)
