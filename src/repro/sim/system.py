"""System assembly and the top-level run loop.

A :class:`System` wires together the memory system, one core per trace,
and the configured store-handling mechanism, then runs cycle by cycle
with event-driven fast-forward: when no core can make progress in the
current cycle, the clock jumps to the next scheduled event (or the next
known core wake-up), charging the skipped cycles to each core's current
stall reason.  This is what makes hundreds-of-cycles store misses
affordable to simulate in pure Python.
"""

from __future__ import annotations

from typing import List, Optional

from ..common.config import SystemConfig
from ..common.errors import ConfigError, DeadlockError
from ..common.events import EventQueue
from ..common.stats import StatGroup
from ..coherence.memsys import MemorySystem
from ..cpu.core import Core
from ..cpu.trace import Trace
from ..mechanisms.registry import make_mechanism
from ..observe.bus import NULL_PROBE
from .progress import ProgressDump
from .results import CoreResult, SimResult


class System:
    """A complete simulated machine executing one trace per core."""

    def __init__(self, config: SystemConfig, traces: List[Trace],
                 workload: str = "") -> None:
        config.validate()
        if len(traces) != config.num_cores:
            raise ConfigError(
                f"{config.num_cores} cores but {len(traces)} traces")
        self.config = config
        self.workload = workload or (traces[0].name if traces else "empty")
        self.events = EventQueue()
        self.stats = StatGroup("system")
        self.memsys = MemorySystem(config, self.events,
                                   self.stats.child("mem"))
        self.cores: List[Core] = []
        for cid, trace in enumerate(traces):
            core_stats = self.stats.child(f"core{cid}")
            port = self.memsys.ports[cid]
            # The core is created first so the mechanism can reach its SB.
            core = Core(cid, config, port, trace, None, core_stats)
            core.mechanism = make_mechanism(
                config.mechanism, config, port, core.sb, self.events,
                core_stats.child("mechanism"))
            self.cores.append(core)
        self.cycle = 0
        self._measure_start = 0
        self.probe = NULL_PROBE

    def run(self, max_cycles: Optional[int] = None,
            warmup_committed: int = 0) -> SimResult:
        """Run to completion (or ``max_cycles``); returns the result.

        ``warmup_committed``: total committed micro-ops (across cores)
        after which all statistics are reset and the measured region
        begins — the equivalent of the paper's cache-warming prefix
        before each simulation point.
        """
        watchdog = self.config.deadlock_cycles
        last_progress = 0
        warmup_pending = warmup_committed > 0
        cores = self.cores
        events = self.events
        run_until = events.run_until
        event_cycles = events._cycles
        # Per-core skip state: a core whose step made no progress cannot
        # change state until an event fires or its own next_wake arrives,
        # so it is not stepped again until then (events are the only
        # external influence on a core).  Skipped stall cycles are
        # charged in bulk when the core is next stepped.
        stale_since = [None] * len(cores)
        done = [False] * len(cores)
        remaining = len(cores)
        while remaining:
            cycle = self.cycle
            if warmup_pending and sum(
                    c._committed for c in cores) >= warmup_committed:
                warmup_pending = False
                self._begin_measurement()
            if max_cycles is not None and cycle >= max_cycles:
                break
            fired = run_until(cycle) if (
                event_cycles and event_cycles[0] <= cycle) else 0
            progress = fired > 0
            for cid, core in enumerate(cores):
                if done[cid]:
                    continue
                since = stale_since[cid]
                if since is not None:
                    if not fired:
                        wake = core.wake_cycle
                        if wake is None or wake > cycle:
                            continue
                    elif core.stuck_at(cycle):
                        # The fired events cannot have unblocked this
                        # core; keep it stale (its skipped cycles keep
                        # accruing to the same stall reason).
                        continue
                    core.charge_skipped(cycle - since - 1, cycle)
                    stale_since[cid] = None
                stepped = core.step(cycle)
                if stepped:
                    progress = True
                # step() records finish_cycle exactly when the core first
                # reports is_done(); checking it avoids a third is_done()
                # call per step.
                if core.finish_cycle is not None and core.is_done():
                    done[cid] = True
                    remaining -= 1
                elif not stepped:
                    stale_since[cid] = cycle
                    core.wake_cycle = core.next_wake(cycle)
            if not remaining:
                break
            if progress:
                last_progress = cycle
                self.cycle = cycle + 1
                continue
            # Fast-forward.  Every non-done core is stale here (a step
            # that made progress would have set ``progress``), and no
            # event has fired since each went stale, so the cached
            # ``wake_cycle`` values are exact — no need to recompute
            # next_wake per core as _next_interesting_cycle() does.
            target = None
            next_event = events.next_cycle()
            if next_event is not None:
                target = next_event if next_event > cycle else cycle + 1
            for cid, core in enumerate(cores):
                if done[cid]:
                    continue
                wake = core.wake_cycle
                if wake is not None:
                    cand = wake if wake > cycle else cycle + 1
                    if target is None or cand < target:
                        target = cand
            if target is None:
                raise self._deadlock(
                    "no-progress",
                    f"no progress possible at cycle {cycle} "
                    f"({self.workload}/{self.config.mechanism})")
            self.cycle = target
            if target - last_progress > watchdog:
                raise self._deadlock(
                    "watchdog",
                    f"watchdog: {watchdog} cycles without progress "
                    f"({self.workload}/{self.config.mechanism})")
        for cid, core in enumerate(self.cores):
            if stale_since[cid] is not None and not done[cid]:
                core.charge_skipped(self.cycle - stale_since[cid] - 1,
                                    self.cycle)
        return self._result()

    def run_controlled(self, scheduler, max_cycles: int = 100_000
                       ) -> SimResult:
        """Run under an external scheduler that chooses interleavings.

        Within a cycle the *enabled actions* are: fire one due event, or
        step one runnable core (each core steps at most once per cycle,
        as in :meth:`run`).  Whenever more than one action is enabled the
        scheduler's ``choose(system, actions)`` picks the index — that is
        a *decision point*; with a single action no choice is consumed.
        After every action ``after_action(system, action)`` runs, which
        is where the model checker evaluates its invariants.

        Core staleness mirrors :meth:`run`: a core whose step made no
        progress is not re-stepped until an event has fired since or its
        own ``next_wake`` arrives, so pure waiting creates no spurious
        decision points.  When a whole cycle yields no progress the clock
        fast-forwards deterministically to the next interesting cycle.

        Raises :class:`DeadlockError` when no progress is possible, when
        the watchdog trips, or when ``max_cycles`` elapses — the model
        checker treats all three as potential liveness violations.
        """
        watchdog = self.config.deadlock_cycles
        last_progress = 0
        done = [core.is_done() for core in self.cores]
        # Event count at the time each core went stale (None = not stale).
        stale_at: List[Optional[int]] = [None] * len(self.cores)
        events_fired = 0
        while not all(done):
            if self.cycle >= max_cycles:
                raise self._deadlock(
                    "cycle-budget",
                    f"controlled run exceeded {max_cycles} cycles "
                    f"({self.workload}/{self.config.mechanism})")
            stepped = list(done)
            progress = False
            while True:
                actions = [("event", handle)
                           for handle in self.events.due_entries(self.cycle)]
                for cid, core in enumerate(self.cores):
                    if stepped[cid]:
                        continue
                    if (stale_at[cid] is not None
                            and events_fired == stale_at[cid]
                            and (core.wake_cycle is None
                                 or core.wake_cycle > self.cycle)):
                        continue
                    actions.append(("core", cid))
                if not actions:
                    break
                # Published for the model checker's state encoder: which
                # cores already took their step this cycle and which are
                # currently stale-excluded.  Two pauses with identical
                # cache/core state but different intra-cycle positions
                # enable different action sets, so they are distinct
                # states.
                self.sched_position = (
                    tuple(stepped),
                    tuple(stale_at[cid] is not None
                          and events_fired == stale_at[cid]
                          for cid in range(len(self.cores))))
                index = 0 if len(actions) == 1 else \
                    scheduler.choose(self, actions)
                action = actions[index]
                kind, target = action
                if kind == "event":
                    self.events.fire_entry(target)
                    events_fired += 1
                    progress = True
                else:
                    core = self.cores[target]
                    stepped[target] = True
                    if core.step(self.cycle):
                        progress = True
                        stale_at[target] = None
                    else:
                        stale_at[target] = events_fired
                        core.wake_cycle = core.next_wake(self.cycle)
                    if core.is_done():
                        done[target] = True
                scheduler.after_action(self, action)
            if all(done):
                break
            if progress:
                last_progress = self.cycle
                self.cycle += 1
                continue
            target_cycle = self._next_interesting_cycle()
            if target_cycle is None:
                raise self._deadlock(
                    "no-progress",
                    f"no progress possible at cycle {self.cycle} "
                    f"({self.workload}/{self.config.mechanism})")
            self.cycle = target_cycle
            if self.cycle - last_progress > watchdog:
                raise self._deadlock(
                    "watchdog",
                    f"watchdog: {watchdog} cycles without progress "
                    f"({self.workload}/{self.config.mechanism})")
        return self._result()

    def _deadlock(self, reason: str, message: str) -> DeadlockError:
        """Build a DeadlockError carrying a structured progress dump."""
        dump = ProgressDump.capture(self, reason, message)
        return DeadlockError(message, dump=dump)

    def _begin_measurement(self) -> None:
        """End the warmup region: zero every statistic and restart the
        cycle base so results cover only the measured region."""
        self.stats.reset()
        self._measure_start = self.cycle
        for core in self.cores:
            core.finish_cycle = None
        if self.probe:
            self.probe.emit(self.cycle, "measure:begin")

    def _next_interesting_cycle(self) -> Optional[int]:
        candidates = []
        next_event = self.events.next_cycle()
        if next_event is not None:
            candidates.append(max(next_event, self.cycle + 1))
        for core in self.cores:
            wake = core.next_wake(self.cycle)
            if wake is not None:
                candidates.append(max(wake, self.cycle + 1))
        return min(candidates) if candidates else None

    def _result(self) -> SimResult:
        start = self._measure_start
        cores = [
            CoreResult(core.core_id, int(core.c_committed.value),
                       (core.finish_cycle if core.finish_cycle is not None
                        else self.cycle) - start,
                       core.stalls.breakdown())
            for core in self.cores
        ]
        return SimResult(self.workload, self.config.mechanism,
                         self.config.core.sb_entries, self.cycle - start,
                         cores, self.stats.flatten())


def run_single(config: SystemConfig, trace: Trace,
               max_cycles: Optional[int] = None) -> SimResult:
    """Convenience: run one trace on a single-core system."""
    system = System(config.with_cores(1), [trace])
    return system.run(max_cycles)
