"""System assembly and simulation drivers."""

from .results import CoreResult, SimResult
from .system import System, run_single

__all__ = ["CoreResult", "SimResult", "System", "run_single"]
