"""Simulation result containers."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class CoreResult:
    """Per-core outcome of one simulation."""

    core_id: int
    committed: int
    finish_cycle: int
    stalls: Dict[str, int] = field(default_factory=dict)

    def ipc(self, cycles: int) -> float:
        return self.committed / cycles if cycles else 0.0


@dataclass
class SimResult:
    """Outcome of one full-system simulation."""

    workload: str
    mechanism: str
    sb_entries: int
    cycles: int
    cores: List[CoreResult]
    #: Flattened statistics tree (``group.path.counter`` -> value).
    stats: Dict[str, float]
    #: Total energy (filled in by the energy model), arbitrary units.
    energy: Optional[float] = None

    @property
    def committed(self) -> int:
        return sum(core.committed for core in self.cores)

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def edp(self) -> Optional[float]:
        """Energy-delay product (energy x cycles)."""
        if self.energy is None:
            return None
        return self.energy * self.cycles

    def stall_fraction(self, reason: str) -> float:
        """Fraction of total cycles stalled on ``reason`` (core 0 for
        single-core runs; mean across cores otherwise), as in Figure 9."""
        if not self.cycles:
            return 0.0
        total = sum(core.stalls.get(reason, 0) for core in self.cores)
        return total / (self.cycles * len(self.cores))

    def stat(self, key: str, default: float = 0.0) -> float:
        return self.stats.get(key, default)

    def sum_stats(self, suffix: str) -> float:
        """Sum every flattened statistic whose key ends with ``suffix``
        (e.g. ``l1d.writes`` across all cores)."""
        return sum(v for k, v in self.stats.items() if k.endswith(suffix))

    def to_dict(self) -> Dict:
        """JSON-serialisable form (for the harness disk cache).

        Dict contents are emitted in sorted-key order so the form is
        *stable*: two equal results serialise identically regardless of
        the insertion order of their stats/stalls dicts (required for
        the cache and for cross-process result comparison).
        """
        return {
            "workload": self.workload,
            "mechanism": self.mechanism,
            "sb_entries": self.sb_entries,
            "cycles": self.cycles,
            "energy": self.energy,
            "cores": [
                {"core_id": c.core_id, "committed": c.committed,
                 "finish_cycle": c.finish_cycle,
                 "stalls": dict(sorted(c.stalls.items()))}
                for c in sorted(self.cores, key=lambda c: c.core_id)
            ],
            "stats": dict(sorted(self.stats.items())),
        }

    def canonical_json(self) -> str:
        """Byte-stable serialisation: equal results give equal strings.

        The parallel harness compares worker output against the serial
        path with this, and the disk cache stores it.
        """
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict) -> "SimResult":
        cores = [CoreResult(c["core_id"], c["committed"], c["finish_cycle"],
                            dict(c["stalls"])) for c in data["cores"]]
        return cls(data["workload"], data["mechanism"], data["sb_entries"],
                   data["cycles"], cores, dict(data["stats"]),
                   data.get("energy"))
