"""Coherence message and snoop-response vocabulary.

The timing model is transaction-based rather than packet-based: a request
walks the hierarchy accumulating latency, and remote caches are consulted
through snoop callbacks.  These enums name the protocol-visible choices;
TUS extends the classic ack/ack-with-data snoop answers with the two
behaviours Section III-C introduces (delay and relinquish).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Set


class ReqType(enum.Enum):
    """Requests a private hierarchy can issue to the shared levels."""

    GETS = "GetS"          # read permission (load miss / read prefetch)
    GETX = "GetX"          # write permission + data (store miss)
    UPGRADE = "Upgrade"    # write permission for a line already held shared
    PUTM = "PutM"          # writeback of a dirty evicted line


class SnoopKind(enum.Enum):
    """What a snoop asks of a remote cache."""

    INVALIDATE = "Inv"     # GetX/Upgrade by another core
    DOWNGRADE = "Down"     # GetS by another core hitting an M/E copy


class SnoopResult(enum.Enum):
    """How a remote cache answers a snoop.

    ``ACK``/``ACK_DATA`` are the classic MESI responses.  ``DELAY`` and
    ``RELINQUISH_OLD_DATA`` are the TUS extensions: a core that holds the
    line as not-visible either delays the request (it owns every line of
    lesser-or-equal lex order, so it is guaranteed to finish first) or
    relinquishes its permission and instructs its L2 to supply the
    unmodified copy of the data.
    """

    ACK = "ack"
    ACK_DATA = "ack_data"
    DELAY = "delay"
    RELINQUISH_OLD_DATA = "relinquish"


@dataclass(slots=True)
class SnoopReply:
    """A remote cache's full answer to one snoop."""

    result: SnoopResult
    #: True when the responder had the only modified copy (data forward).
    had_dirty: bool = False


@dataclass(slots=True)
class Transaction:
    """Bookkeeping for one in-flight shared-level transaction."""

    req: ReqType
    addr: int
    requester: int
    issued_cycle: int
    #: Number of times the directory re-polled a delaying core.
    polls: int = 0
    #: Number of busy/conflict retries at the directory; indexes the
    #: retry policy's backoff schedule.
    retries: int = 0
    prefetch: bool = False
    #: Targets that already answered this transaction's snoop (ACK,
    #: ACK_DATA, or RELINQUISH).  A DELAY re-poll must not snoop them
    #: again: their caches were already invalidated/downgraded and the
    #: stats already counted them.
    resolved: Set[int] = field(default_factory=set)
    #: True once any resolved target supplied (or relinquished) dirty
    #: data; must survive DELAY re-polls so the data forward is not
    #: forgotten.
    data_from_remote: bool = False
    #: Core currently answering this transaction's snoop with DELAY
    #: (None while no delay is outstanding).  The model checker's
    #: wait-for graph is built from these edges: a cycle of live delays
    #: is the deadlock the lex order is supposed to exclude.
    waiting_on: Optional[int] = None
    #: Directory home (shard id) serving this transaction; 0 on a
    #: monolithic directory.
    home: int = 0
    #: Slowest snoop round trip charged so far (hop latency between the
    #: home and its snoop targets).  Accumulated as a max across DELAY
    #: re-polls so the data supply pays the full collection time once.
    snoop_latency: int = 0
