"""Interconnect topology: hop-count latency between tiles.

The transaction engine (:mod:`repro.coherence.memsys`) charges every
shared-level message a latency derived from where its endpoints sit on
the interconnect: the requesting core, the directory home that owns the
line, the snooped cores, and the DRAM channel behind the home.  Four
layouts are modelled:

``p2p``
    The original timing: every distance is zero, so requests, snoops,
    and fills cost exactly what they did before the topology layer
    existed.  This is the default and keeps every committed benchmark
    fingerprint bit-identical.
``crossbar``
    A non-blocking switch: one hop between any two distinct tiles.
``ring``
    Tiles on a bidirectional ring; distance is the shorter way around.
``mesh``
    Tiles on a near-square 2D grid; distance is Manhattan.

Placement: core *i* occupies tile *i*.  Directory homes and DRAM
channels are co-located with cores, spread evenly across the tiles
(home *s* at tile ``s * C // S``), and each channel sits on the tile of
the lowest-numbered home it serves, which is what makes the DRAM
latency home-affine: a home's own channel is zero or few hops away,
another home's channel is across the die.

Distances are precomputed into dense matrices at construction — the
hot path does two list indexings per message, no arithmetic.
"""

from __future__ import annotations

import math
from typing import Dict, List

from ..common.config import SystemConfig


def _grid_side(tiles: int) -> int:
    return max(1, math.isqrt(tiles - 1) + 1) if tiles > 1 else 1


class Topology:
    """Precomputed hop latencies for one system layout."""

    def __init__(self, config: SystemConfig) -> None:
        self.kind = config.topology
        self.num_cores = config.num_cores
        self.num_shards = config.dir_shards
        self.num_channels = config.dram_channels
        self.link_latency = config.link_latency
        cores = self.num_cores
        home_tiles = [s * cores // self.num_shards
                      for s in range(self.num_shards)]
        # A channel sits with the lowest home it serves (home h uses
        # channel h & (channels - 1)); extra channels beyond the shard
        # count spread like homes.
        channel_tiles = [
            home_tiles[c] if c < self.num_shards else c * cores
            // self.num_channels for c in range(self.num_channels)]
        #: One-way latency core -> home (requests, fills, snoops).
        self.core_home: List[List[int]] = [
            [self._hops(core, tile) * self.link_latency
             for tile in home_tiles] for core in range(cores)]
        #: One-way latency core -> core (symmetry signatures only; data
        #: forwards are routed through the home in this model).
        self.core_core: List[List[int]] = [
            [self._hops(a, b) * self.link_latency for b in range(cores)]
            for a in range(cores)]
        #: One-way latency home -> DRAM channel.
        self.home_dram: List[List[int]] = [
            [self._hops(tile, ch) * self.link_latency
             for ch in channel_tiles] for tile in home_tiles]

    def _hops(self, a: int, b: int) -> int:
        if a == b or self.kind == "p2p":
            return 0
        if self.kind == "crossbar":
            return 1
        if self.kind == "ring":
            d = abs(a - b)
            return min(d, self.num_cores - d)
        # mesh
        side = _grid_side(self.num_cores)
        return (abs(a % side - b % side)
                + abs(a // side - b // side))

    # -- message latencies --------------------------------------------------
    def request_latency(self, core: int, home: int) -> int:
        """Core's request travelling to the directory home (one way)."""
        return self.core_home[core][home]

    def snoop_round_trip(self, home: int, core: int) -> int:
        """Home snoops a remote core and waits for its answer."""
        return 2 * self.core_home[core][home]

    def fill_latency(self, home: int, core: int) -> int:
        """Data/permission grant travelling home -> requester."""
        return self.core_home[core][home]

    def dram_round_trip(self, home: int, channel: int) -> int:
        """Home's miss travelling to its DRAM channel and back."""
        return 2 * self.home_dram[home][channel]

    # -- symmetry -----------------------------------------------------------
    @property
    def uniform(self) -> bool:
        """True when every core sees identical distances (p2p or any
        single-tile layout) — core relabelling cannot change timing."""
        return (all(d == 0 for row in self.core_home for d in row)
                and all(d == 0 for row in self.core_core for d in row))

    def permutation_ok(self, perm: Dict[int, int]) -> bool:
        """Is the core relabelling ``old -> new`` timing-preserving?

        A renaming is behaviourally legal only if each core lands on a
        tile with the same distance to every directory home, and every
        core pair keeps its pairwise distance.  Under ``p2p`` all
        distances are zero and every permutation passes — the original
        unrestricted symmetry reduction.
        """
        if self.uniform:
            return True
        core_home = self.core_home
        for old, new in perm.items():
            if core_home[old] != core_home[new]:
                return False
        core_core = self.core_core
        for a, pa in perm.items():
            row_a = core_core[a]
            row_pa = core_core[pa]
            for b, pb in perm.items():
                if row_a[b] != row_pa[pb]:
                    return False
        return True
