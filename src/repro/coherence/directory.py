"""The coherence directory.

A full-map directory co-located with the shared LLC.  It is indexed by
the same 16 low bits of the cache-line address that define the lex order
(Section III-C) — that identity is what makes the paper's lex-conflict
rule sufficient for deadlock freedom: all lines of one atomic group map
to *different* directory sets, so acquiring exclusivity for a group can
never self-conflict inside the directory.

Entries track the owner (a core holding E/M) or the sharer set, plus a
``busy`` flag that serialises transactions per line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..common.addr import LEX_MASK, LINE_MASK, line_index
from ..common.stats import StatGroup
from ..faults.plan import NULL_FAULTS
from ..observe.bus import NULL_PROBE


@dataclass
class DirEntry:
    """Directory state for one tracked cache line."""

    addr: int
    owner: Optional[int] = None        # core id holding E/M, if any
    sharers: Set[int] = field(default_factory=set)
    busy: bool = False                 # a transaction is in flight
    #: LRU timestamp for directory-set replacement.
    last_touch: int = 0

    @property
    def idle_uncached(self) -> bool:
        return self.owner is None and not self.sharers and not self.busy


class Directory:
    """Set-associative full-map directory indexed by lex-order bits."""

    def __init__(self, num_sets: int = 1 << 16, assoc: int = 16,
                 stats: Optional[StatGroup] = None) -> None:
        if num_sets & (num_sets - 1):
            raise ValueError("directory sets must be a power of two")
        self.num_sets = num_sets
        self.assoc = assoc
        self._sets: Dict[int, List[DirEntry]] = {}
        self._clock = 0
        stats = stats if stats is not None else StatGroup("directory")
        self._lookups = stats.counter("lookups")
        self._allocs = stats.counter("allocations")
        self._evictions = stats.counter(
            "evictions", "tracked lines dropped for capacity")
        self._conflict_stalls = stats.counter(
            "conflict_stalls", "allocations refused: set full of busy lines")
        self.probe = NULL_PROBE
        #: Fault-injection hook (repro.faults).
        self.faults = NULL_FAULTS

    def set_index(self, addr: int) -> int:
        return line_index(addr) & LEX_MASK & (self.num_sets - 1)

    def _set(self, addr: int) -> List[DirEntry]:
        idx = self.set_index(addr)
        entries = self._sets.get(idx)
        if entries is None:
            entries = []
            self._sets[idx] = entries
        return entries

    def peek(self, addr: int) -> Optional[DirEntry]:
        """Side-effect-free lookup: no stats, no LRU touch.  Used by the
        model checker's invariants, which must not perturb replacement
        state.  (Named ``peek``, not ``probe``: ``self.probe`` is the
        instrumentation probe, as everywhere else in the simulator.)"""
        addr &= LINE_MASK
        for entry in self._sets.get(self.set_index(addr), ()):
            if entry.addr == addr:
                return entry
        return None

    def entries(self) -> List[DirEntry]:
        """Every tracked entry (unordered); for state hashing."""
        return [entry for entries in self._sets.values()
                for entry in entries]

    def lookup(self, addr: int) -> Optional[DirEntry]:
        """Return the entry tracking ``addr``, or None."""
        addr &= LINE_MASK
        self._lookups.inc()
        for entry in self._set(addr):
            if entry.addr == addr:
                self._clock += 1
                entry.last_touch = self._clock
                return entry
        return None

    def allocate(self, addr: int,
                 cycle: Optional[int] = None) -> Optional[DirEntry]:
        """Allocate an entry for ``addr``; returns None if the set is full
        of lines that cannot be dropped (busy or actively cached — a real
        design would back-invalidate; we refuse and the requester retries,
        which is the conservative choice for TUS forward-progress runs)."""
        addr &= LINE_MASK
        if self.faults and self.faults.refuse("dir-conflict"):
            # Injected victim-NACK storm: the set behaves as if every
            # candidate victim vetoed its eviction, so the allocation is
            # refused and the requester retries.  Deliberately bypasses
            # the conflict-stall counter and probes — injected refusals
            # are bookkept on the FaultPlan, not in system stats.
            return None
        entries = self._set(addr)
        if len(entries) >= self.assoc:
            victim = self._choose_victim(entries)
            if victim is None:
                self._conflict_stalls.inc()
                if self.probe:
                    self.probe.emit(cycle if cycle is not None else 0,
                                    "dirent:conflict", line=addr)
                return None
            entries.remove(victim)
            self._evictions.inc()
            if self.probe:
                self.probe.emit(cycle if cycle is not None else 0,
                                "dirent:evict", line=victim.addr)
        self._clock += 1
        entry = DirEntry(addr, last_touch=self._clock)
        entries.append(entry)
        self._allocs.inc()
        if self.probe:
            self.probe.emit(cycle if cycle is not None else 0,
                            "dirent:alloc", line=addr)
        return entry

    def _choose_victim(self, entries: List[DirEntry]) -> Optional[DirEntry]:
        idle = [e for e in entries if e.idle_uncached]
        if not idle:
            return None
        return min(idle, key=lambda e: e.last_touch)

    def get_or_allocate(self, addr: int,
                        cycle: Optional[int] = None) -> Optional[DirEntry]:
        entry = self.lookup(addr)
        if entry is not None:
            return entry
        return self.allocate(addr, cycle)

    def drop(self, addr: int) -> None:
        """Remove the entry for ``addr`` (line no longer cached anywhere)."""
        addr &= LINE_MASK
        entries = self._set(addr)
        for entry in entries:
            if entry.addr == addr:
                entries.remove(entry)
                return
