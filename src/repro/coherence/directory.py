"""The coherence directory.

A full-map directory co-located with the shared LLC.  It is indexed by
the same 16 low bits of the cache-line address that define the lex order
(Section III-C) — that identity is what makes the paper's lex-conflict
rule sufficient for deadlock freedom: all lines of one atomic group map
to *different* directory sets, so acquiring exclusivity for a group can
never self-conflict inside the directory.

Entries track the owner (a core holding E/M) or the sharer set, plus a
``busy`` flag that serialises transactions per line.

Scaled machines shard the directory into N home nodes
(:class:`ShardedDirectory`): line addresses are interleaved across homes
by their low lex-order bits — the same bits that index the sets — so
every line has exactly one home, all lines of one atomic group still
map to different sets within (or across) homes, and the lex-conflict
deadlock-freedom argument carries over shard boundaries unchanged.
Both classes expose ``shards`` and ``home_of`` so diagnostics, fault
injection, and the model checker can quantify over every home without
caring whether the directory is monolithic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..common.addr import LEX_MASK, LINE_MASK, line_index
from ..common.stats import StatGroup
from ..faults.plan import NULL_FAULTS
from ..observe.bus import NULL_PROBE


@dataclass
class DirEntry:
    """Directory state for one tracked cache line."""

    addr: int
    owner: Optional[int] = None        # core id holding E/M, if any
    sharers: Set[int] = field(default_factory=set)
    busy: bool = False                 # a transaction is in flight
    #: LRU timestamp for directory-set replacement.
    last_touch: int = 0

    @property
    def idle_uncached(self) -> bool:
        return self.owner is None and not self.sharers and not self.busy


class Directory:
    """Set-associative full-map directory indexed by lex-order bits."""

    def __init__(self, num_sets: int = 1 << 16, assoc: int = 16,
                 stats: Optional[StatGroup] = None) -> None:
        if num_sets & (num_sets - 1):
            raise ValueError("directory sets must be a power of two")
        self.num_sets = num_sets
        self.assoc = assoc
        self._sets: Dict[int, List[DirEntry]] = {}
        self._clock = 0
        stats = stats if stats is not None else StatGroup("directory")
        self._lookups = stats.counter("lookups")
        self._allocs = stats.counter("allocations")
        self._evictions = stats.counter(
            "evictions", "tracked lines dropped for capacity")
        self._conflict_stalls = stats.counter(
            "conflict_stalls", "allocations refused: set full of busy lines")
        self.probe = NULL_PROBE
        #: Fault-injection hook (repro.faults).
        self.faults = NULL_FAULTS

    #: A monolithic directory is its own single home node.
    num_shards = 1

    @property
    def shards(self) -> tuple:
        """The home nodes, for code that quantifies over all of them."""
        return (self,)

    def home_of(self, addr: int) -> int:
        """The shard id owning ``addr`` (always 0 here)."""
        return 0

    def set_index(self, addr: int) -> int:
        return line_index(addr) & LEX_MASK & (self.num_sets - 1)

    def _set(self, addr: int) -> List[DirEntry]:
        idx = self.set_index(addr)
        entries = self._sets.get(idx)
        if entries is None:
            entries = []
            self._sets[idx] = entries
        return entries

    def peek(self, addr: int) -> Optional[DirEntry]:
        """Side-effect-free lookup: no stats, no LRU touch.  Used by the
        model checker's invariants, which must not perturb replacement
        state.  (Named ``peek``, not ``probe``: ``self.probe`` is the
        instrumentation probe, as everywhere else in the simulator.)"""
        addr &= LINE_MASK
        for entry in self._sets.get(self.set_index(addr), ()):
            if entry.addr == addr:
                return entry
        return None

    def entries(self) -> List[DirEntry]:
        """Every tracked entry (unordered); for state hashing."""
        return [entry for entries in self._sets.values()
                for entry in entries]

    def lookup(self, addr: int) -> Optional[DirEntry]:
        """Return the entry tracking ``addr``, or None."""
        addr &= LINE_MASK
        self._lookups.inc()
        for entry in self._set(addr):
            if entry.addr == addr:
                self._clock += 1
                entry.last_touch = self._clock
                return entry
        return None

    def allocate(self, addr: int,
                 cycle: Optional[int] = None) -> Optional[DirEntry]:
        """Allocate an entry for ``addr``; returns None if the set is full
        of lines that cannot be dropped (busy or actively cached — a real
        design would back-invalidate; we refuse and the requester retries,
        which is the conservative choice for TUS forward-progress runs)."""
        addr &= LINE_MASK
        if self.faults and self.faults.refuse("dir-conflict"):
            # Injected victim-NACK storm: the set behaves as if every
            # candidate victim vetoed its eviction, so the allocation is
            # refused and the requester retries.  Deliberately bypasses
            # the conflict-stall counter and probes — injected refusals
            # are bookkept on the FaultPlan, not in system stats.
            return None
        entries = self._set(addr)
        if len(entries) >= self.assoc:
            victim = self._choose_victim(entries)
            if victim is None:
                self._conflict_stalls.inc()
                if self.probe:
                    self.probe.emit(cycle if cycle is not None else 0,
                                    "dirent:conflict", line=addr)
                return None
            entries.remove(victim)
            self._evictions.inc()
            if self.probe:
                self.probe.emit(cycle if cycle is not None else 0,
                                "dirent:evict", line=victim.addr)
        self._clock += 1
        entry = DirEntry(addr, last_touch=self._clock)
        entries.append(entry)
        self._allocs.inc()
        if self.probe:
            self.probe.emit(cycle if cycle is not None else 0,
                            "dirent:alloc", line=addr)
        return entry

    def _choose_victim(self, entries: List[DirEntry]) -> Optional[DirEntry]:
        idle = [e for e in entries if e.idle_uncached]
        if not idle:
            return None
        return min(idle, key=lambda e: e.last_touch)

    def get_or_allocate(self, addr: int,
                        cycle: Optional[int] = None) -> Optional[DirEntry]:
        entry = self.lookup(addr)
        if entry is not None:
            return entry
        return self.allocate(addr, cycle)

    def drop(self, addr: int) -> None:
        """Remove the entry for ``addr`` (line no longer cached anywhere)."""
        addr &= LINE_MASK
        entries = self._set(addr)
        for entry in entries:
            if entry.addr == addr:
                entries.remove(entry)
                return


class ShardedDirectory:
    """N directory home nodes with lex-interleaved line ownership.

    Each shard is a full :class:`Directory` scaled down to its share of
    the sets; ``home_of`` picks the shard from the low lex-order bits of
    the line address, so the mapping is static, conflict-free, and
    identical to the bits the DRAM channel map uses (home-affine NUMA).
    The per-address API (``lookup``/``allocate``/...) delegates to the
    owning shard, which keeps :class:`~repro.coherence.memsys
    .MemorySystem` and the invariants shard-agnostic.
    """

    def __init__(self, num_shards: int, num_sets: int = 1 << 16,
                 assoc: int = 16,
                 stats: Optional[StatGroup] = None) -> None:
        if num_shards < 2:
            raise ValueError("a sharded directory needs >= 2 shards")
        if num_shards & (num_shards - 1):
            raise ValueError("directory shards must be a power of two")
        if num_sets % num_shards:
            raise ValueError("directory sets must split evenly over shards")
        self.num_shards = num_shards
        self.num_sets = num_sets
        self.assoc = assoc
        stats = stats if stats is not None else StatGroup("directory")
        self._shards = [
            Directory(num_sets // num_shards, assoc,
                      stats=stats.child(f"shard{sid}"))
            for sid in range(num_shards)]

    @property
    def shards(self) -> tuple:
        return tuple(self._shards)

    def home_of(self, addr: int) -> int:
        return line_index(addr) & LEX_MASK & (self.num_shards - 1)

    def shard(self, addr: int) -> Directory:
        """The home node owning ``addr``."""
        return self._shards[self.home_of(addr)]

    # -- delegation to the owning home --------------------------------------
    def peek(self, addr: int) -> Optional[DirEntry]:
        return self.shard(addr).peek(addr)

    def lookup(self, addr: int) -> Optional[DirEntry]:
        return self.shard(addr).lookup(addr)

    def allocate(self, addr: int,
                 cycle: Optional[int] = None) -> Optional[DirEntry]:
        return self.shard(addr).allocate(addr, cycle)

    def get_or_allocate(self, addr: int,
                        cycle: Optional[int] = None) -> Optional[DirEntry]:
        return self.shard(addr).get_or_allocate(addr, cycle)

    def drop(self, addr: int) -> None:
        self.shard(addr).drop(addr)

    def entries(self) -> List[DirEntry]:
        """Every tracked entry across all homes (unordered)."""
        return [entry for shard in self._shards
                for entry in shard.entries()]

    # -- hooks fan out to every home ----------------------------------------
    @property
    def probe(self):
        return self._shards[0].probe

    @probe.setter
    def probe(self, value) -> None:
        for shard in self._shards:
            shard.probe = value

    @property
    def faults(self):
        return self._shards[0].faults

    @faults.setter
    def faults(self, value) -> None:
        for shard in self._shards:
            shard.faults = value
