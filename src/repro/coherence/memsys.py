"""The full memory system: private L1D/L2 per core, shared L3 + directory,
DRAM, and the coherence transaction engine.

Timing is transaction-based.  A request from core *c* walks the hierarchy
accumulating latency; remote caches are consulted through snoop callbacks
delivered as events.  The directory serialises transactions per line with
a ``busy`` flag; colliding requesters retry.  This reproduces the
protocol-visible *behaviours* the paper relies on — invalidations,
NACK/retry, data forwarding from a relinquishing core's L2, delayed
external requests — at message-round-trip timing fidelity, without
modelling individual network flits.

Scaled machines add placement on top: each transaction is routed to the
directory home owning its line (``dir_shards`` > 1 shards the directory
by lex-order bits), and every message leg — request to the home, snoop
round trips, the home's DRAM channel access, the fill back to the
requester — pays a hop latency from :class:`~repro.coherence.topology
.Topology`.  The default point-to-point layout charges zero hops
everywhere, so default-configured results are bit-identical to builds
without the topology layer.

TUS integration points (used by ``repro.core``):

* ``CorePort.snoop_hook`` — consulted when a snoop finds a not-visible
  line; returns :class:`SnoopReply` with ``DELAY`` or
  ``RELINQUISH_OLD_DATA`` per the authorization unit's lex-order check;
* ``CorePort.fill_hook`` — fired when a fill or permission grant reaches
  a line that holds unauthorized data, so the WOQ can combine and mark
  the entry ready;
* not-visible lines are never chosen as victims (L1D) and veto their L2
  backing line's eviction (the NACK-and-refresh rule).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional

from ..common.addr import LINE_MASK
from ..common.config import RetryConfig, SystemConfig
from ..common.errors import ProtocolError
from ..common.events import EventQueue
from ..common.rng import make_rng
from ..common.stats import StatGroup
from ..faults.plan import NULL_FAULTS
from ..mem.cache import CacheArray
from ..mem.cacheline import CacheLine, State
from ..mem.dram import DRAM
from ..mem.mshr import MSHRFile
from ..mem.prefetcher import StreamPrefetcher
from ..observe.bus import NULL_PROBE
from .directory import Directory, ShardedDirectory
from .msgs import ReqType, SnoopKind, SnoopReply, SnoopResult, Transaction
from .topology import Topology

#: Cycles between directory re-polls of a core that answered DELAY.
POLL_INTERVAL = 24
#: Retry delay when the directory entry is busy or unallocatable
#: (the ``fixed`` retry policy; see :class:`RetryPolicy`).
BUSY_RETRY = 16
#: Internal retry delay when a core-side resource (MSHR) is full.
#: Kept for configuration parity: the MSHR-full path parks requests and
#: retries them event-driven on the next fill, so no fixed delay is
#: consumed on that path.
RESOURCE_RETRY = 4


class RetryPolicy:
    """Delay schedule for busy-directory retries.

    The ``fixed`` policy is the original behaviour — every retry waits
    exactly ``busy_retry`` cycles, and the jitter RNG is never touched,
    so default-configured simulations are bit-identical to builds that
    predate this class.  The ``backoff`` policy applies bounded
    exponential backoff with jitter so colliding requesters desynchronize
    instead of hammering the directory in lockstep when fault injection
    stretches busy windows.
    """

    def __init__(self, config: RetryConfig) -> None:
        self.config = config
        self._rng = (make_rng(config.seed, "retry-jitter")
                     if config.policy == "backoff" else None)

    def busy_delay(self, attempt: int) -> int:
        cfg = self.config
        if cfg.policy == "fixed":
            return cfg.busy_retry
        exponent = min(attempt, 16)   # cap so the intermediate stays small
        delay = min(cfg.max_delay,
                    cfg.busy_retry * cfg.backoff_factor ** exponent)
        if cfg.jitter:
            delay += self._rng.randrange(cfg.jitter + 1)
        return delay


class MemorySystem:
    """All cache levels, the directory, and DRAM for one simulated system."""

    def __init__(self, config: SystemConfig, events: EventQueue,
                 stats: Optional[StatGroup] = None) -> None:
        config.validate()
        self.config = config
        self.events = events
        self.stats = stats if stats is not None else StatGroup("memsys")
        self.l3 = CacheArray(config.memory.l3, stats=self.stats.child("l3"))
        # A 1-shard config keeps the plain monolithic directory: the
        # shard layer must not perturb the default machine's stat tree
        # (fingerprints hash it) or its hot path.
        if config.dir_shards > 1:
            self.directory = ShardedDirectory(
                config.dir_shards, stats=self.stats.child("directory"))
        else:
            self.directory = Directory(stats=self.stats.child("directory"))
        self.dram = DRAM(config.memory.dram_latency, config.memory.dram_gap,
                         channels=config.dram_channels,
                         stats=self.stats.child("dram"))
        self.topology = Topology(config)
        self.ports = [CorePort(self, cid) for cid in range(config.num_cores)]
        #: Transactions between start and data supply, oldest first.  The
        #: model checker reads this to build the delay wait-for graph.
        self.inflight: List[Transaction] = []
        dstats = self.stats.child("protocol")
        self.c_transactions = dstats.counter("transactions")
        self.c_retries = dstats.counter("retries", "busy/conflict retries")
        self.c_invalidations = dstats.counter(
            "invalidations", "remote copies invalidated (once per "
            "transaction and target)")
        self.c_downgrades = dstats.counter(
            "downgrades", "exclusive owners downgraded to shared")
        self.c_delays = dstats.counter("delayed_snoops",
                                       "snoops answered DELAY by TUS")
        self.c_relinquish = dstats.counter("relinquished",
                                           "lines relinquished by TUS")
        self.c_forwards = dstats.counter("c2c_forwards",
                                         "cache-to-cache data transfers")
        self.probe = NULL_PROBE
        #: Fault-injection hook (repro.faults); the shared null object
        #: unless a FaultInjector is attached.
        self.faults = NULL_FAULTS
        self._retry = RetryPolicy(config.retry)

    # ------------------------------------------------------------------
    # Shared-level transaction engine
    # ------------------------------------------------------------------
    def start_transaction(self, req: ReqType, addr: int, requester: int,
                          cycle: int, on_done: Callable[[int], None],
                          prefetch: bool = False) -> None:
        """Begin a GetS/GetX/Upgrade at the directory.

        ``cycle`` is the time the request *leaves the requester's private
        L2* (the caller accounts L1→L2 latency).  ``on_done`` fires with
        the cycle at which the fill reaches the requester's L1D.
        """
        addr &= LINE_MASK
        trans = Transaction(req, addr, requester, cycle, prefetch=prefetch,
                            home=self.directory.home_of(addr))
        self.c_transactions.inc()
        self.inflight.append(trans)
        arrive = (cycle + self.config.memory.l3.latency
                  + self.topology.request_latency(requester, trans.home))
        self.events.schedule(arrive, lambda: self._at_directory(trans, arrive,
                                                                on_done),
                             label=f"dir:{req.value}:{addr:#x}",
                             actor=requester)

    def _at_directory(self, trans: Transaction, cycle: int,
                      on_done: Callable[[int], None]) -> None:
        entry = self.directory.get_or_allocate(trans.addr, cycle)
        busy = entry is None or entry.busy
        if not busy and self.faults and self.faults.refuse("dir-busy"):
            # Injected extended busy window: the entry is free, but the
            # requester observes it busy (its request lost arbitration)
            # and walks the normal retry path.
            busy = True
        if busy:
            self.c_retries.inc()
            if self.probe:
                self.probe.emit(cycle, "busy", line=trans.addr,
                                requester=trans.requester)
            retry = cycle + self._retry.busy_delay(trans.retries)
            trans.retries += 1
            self.events.schedule(
                retry, lambda: self._at_directory(trans, retry, on_done),
                label=f"busy:{trans.addr:#x}", actor=trans.requester)
            return
        entry.busy = True
        if self.probe:
            self.probe.emit(cycle, f"dir:{trans.req.value.lower()}",
                            line=trans.addr, requester=trans.requester)
        self._resolve_snoops(trans, entry, cycle, on_done)

    def _resolve_snoops(self, trans: Transaction, entry, cycle: int,
                        on_done: Callable[[int], None]) -> None:
        """Invalidate/downgrade remote copies, honouring DELAY re-polls.

        Targets that already answered are recorded on the transaction
        and skipped when a DELAY forces a re-poll — re-snooping them
        would re-invalidate their caches and double-count stats.
        """
        kind = (SnoopKind.DOWNGRADE if trans.req == ReqType.GETS
                else SnoopKind.INVALIDATE)
        trans.waiting_on = None
        targets = [core_id for core_id in self._snoop_targets(trans, entry)
                   if core_id not in trans.resolved]
        for core_id in targets:
            if self.faults and self.faults.force_delay(trans.addr, core_id):
                # Injected NACK burst: the snoop message is stuck in the
                # network, so the target never sees it this round and the
                # requester re-polls.  No protocol DELAY was answered —
                # the target made no decision — so no waiting_on edge is
                # recorded and the wait-for graph keeps its lex-order
                # meaning (a forced edge could fabricate a cycle no real
                # schedule can produce).
                self.c_delays.inc()
                trans.polls += 1
                if self.probe:
                    self.probe.emit(cycle, "poll", line=trans.addr,
                                    requester=trans.requester,
                                    target=core_id)
                retry = (cycle + POLL_INTERVAL
                         + self.topology.snoop_round_trip(trans.home,
                                                          core_id)
                         + self.faults.delay("poll-jitter"))
                self.events.schedule(
                    retry,
                    lambda: self._resolve_snoops(trans, entry, retry, on_done),
                    label=f"poll:{trans.addr:#x}", actor=trans.requester)
                return
            reply = self.ports[core_id]._snoop(trans.addr, kind,
                                               trans.requester, cycle)
            if reply.result == SnoopResult.DELAY:
                # The remote core is guaranteed to make the line visible
                # on its own; poll until it does.
                self.c_delays.inc()
                trans.polls += 1
                trans.waiting_on = core_id
                if self.probe:
                    self.probe.emit(cycle, "poll", line=trans.addr,
                                    requester=trans.requester,
                                    target=core_id)
                retry = (cycle + POLL_INTERVAL
                         + self.topology.snoop_round_trip(trans.home,
                                                          core_id))
                if self.faults:
                    retry += self.faults.delay("poll-jitter")
                self.events.schedule(
                    retry,
                    lambda: self._resolve_snoops(trans, entry, retry, on_done),
                    label=f"poll:{trans.addr:#x}", actor=trans.requester)
                return
            trans.resolved.add(core_id)
            round_trip = self.topology.snoop_round_trip(trans.home, core_id)
            if round_trip > trans.snoop_latency:
                trans.snoop_latency = round_trip
            if self.probe:
                self.probe.emit(cycle, "snoop", line=trans.addr,
                                kind=kind.value.lower(), target=core_id,
                                result=reply.result.value)
            if kind == SnoopKind.INVALIDATE:
                self.c_invalidations.inc()
            else:
                self.c_downgrades.inc()
            if reply.result == SnoopResult.RELINQUISH_OLD_DATA:
                self.c_relinquish.inc()
                trans.data_from_remote = True
            elif reply.result == SnoopResult.ACK_DATA:
                trans.data_from_remote = True
            self._apply_snoop(entry, core_id, kind)
        self._supply_data(trans, entry, cycle, trans.data_from_remote,
                          on_done)

    def _snoop_targets(self, trans: Transaction, entry) -> List[int]:
        """Cores the directory entry actually names — never a scan over
        every core.  The fan-out cost is O(|sharers|), so it stays flat
        as the machine scales to 64 cores, and a core absent from the
        sharer vector can never be snooped by construction."""
        owner = entry.owner
        if trans.req == ReqType.GETS:
            # Only an exclusive owner needs to be downgraded for a read.
            return ([owner] if owner is not None
                    and owner != trans.requester else [])
        targets = [core_id for core_id in entry.sharers
                   if core_id != trans.requester]
        if (owner is not None and owner != trans.requester
                and owner not in entry.sharers):
            targets.append(owner)
        targets.sort()
        return targets

    def _apply_snoop(self, entry, core_id: int, kind: SnoopKind) -> None:
        if kind == SnoopKind.INVALIDATE:
            entry.sharers.discard(core_id)
            if entry.owner == core_id:
                entry.owner = None
        else:  # downgrade: owner becomes a sharer
            if entry.owner == core_id:
                entry.owner = None
                entry.sharers.add(core_id)

    def _supply_data(self, trans: Transaction, entry, cycle: int,
                     data_from_remote: bool,
                     on_done: Callable[[int], None]) -> None:
        mem = self.config.memory
        # The home has now collected every snoop answer; the slowest
        # round trip gates when data supply can begin (zero on p2p).
        cycle += trans.snoop_latency
        if data_from_remote:
            # Cache-to-cache transfer through the shared level.
            self.c_forwards.inc()
            data_cycle = cycle + mem.l2.latency
            self.l3.record_write()
            source = "c2c"
        elif self.l3.lookup(trans.addr, cycle=cycle) is not None:
            self.l3.record_read()
            data_cycle = cycle
            source = "l3"
        else:
            # The miss travels home -> channel, queues for bandwidth
            # there, and the data travels back (home-affine NUMA: the
            # channel interleave uses the same lex bits as the homes).
            channel = self.dram.channel_of(trans.addr)
            hop = self.topology.home_dram[trans.home][channel]
            data_cycle = self.dram.access(cycle + hop, channel) + hop
            self._install_l3(trans.addr, cycle)
            source = "dram"
        if self.faults:
            # Injected completion jitter on the data return path.
            data_cycle += self.faults.delay(
                "c2c-delay" if data_from_remote else "fill-delay")
        if self.probe:
            self.probe.emit(cycle, "data", line=trans.addr, source=source)
        if trans.req == ReqType.GETS:
            entry.sharers.add(trans.requester)
        else:
            entry.sharers.discard(trans.requester)
            entry.owner = trans.requester
        # The entry stays busy until the fill is installed at the
        # requester.  Releasing it here would let a later transaction
        # snoop the new owner *before* the data arrives — the remote
        # cache answers from its stale (empty) state and the line ends
        # up writable at one core while another holds a valid copy.
        done = (data_cycle + mem.l2.latency   # shared level back to L1D
                + self.topology.fill_latency(trans.home, trans.requester))
        grant_state = State.S if trans.req == ReqType.GETS else State.E
        self.events.schedule(
            done, lambda: self._finish(trans, entry, grant_state, done,
                                       on_done),
            label=f"fill:{trans.addr:#x}", actor=trans.requester)

    def _finish(self, trans: Transaction, entry, state: State, cycle: int,
                on_done: Callable[[int], None]) -> None:
        """Install the fill at the requester, then release the line."""
        if self.probe:
            self.probe.emit(cycle, "fill", line=trans.addr,
                            requester=trans.requester,
                            latency=cycle - trans.issued_cycle)
        self.ports[trans.requester]._fill(trans.addr, state, cycle, on_done)
        entry.busy = False
        if trans in self.inflight:
            self.inflight.remove(trans)

    def _install_l3(self, addr: int, cycle: int) -> None:
        if self.l3.probe(addr) is not None:
            return
        if not self.l3.has_free_way(addr):
            return
        self.l3.allocate(addr, State.S, cycle)

    # Convenience for tests -------------------------------------------------
    def port(self, core_id: int) -> "CorePort":
        return self.ports[core_id]


class CorePort:
    """One core's window into the memory system (its private hierarchy)."""

    def __init__(self, system: MemorySystem, core_id: int) -> None:
        self.system = system
        self.core_id = core_id
        cfg = system.config.memory
        stats = system.stats.child(f"core{core_id}")
        self.stats = stats
        self.l1d = CacheArray(cfg.l1d, stats=stats.child("l1d"))
        self.l2 = CacheArray(cfg.l2, stats=stats.child("l2"))
        self.mshrs = MSHRFile(cfg.l1d.mshrs, stats=stats.child("mshr"))
        self.prefetcher = (StreamPrefetcher(cfg.stream_prefetch_degree,
                                            stats=stats.child("prefetcher"))
                           if cfg.stream_prefetch else None)
        #: TUS: consulted when a snoop finds a not-visible line.
        self.snoop_hook: Optional[
            Callable[[int, SnoopKind, int, int], SnoopReply]] = None
        #: TUS: fired when a fill reaches a line holding unauthorized data.
        self.fill_hook: Optional[Callable[[int, CacheLine, int], None]] = None
        #: CSB: consulted when a snoop reaches a *visible* line; True
        #: answers DELAY (the holder is mid-flush on an atomic group and
        #: the lex rule says it finishes first).
        self.hold_hook: Optional[
            Callable[[int, SnoopKind, int, int], bool]] = None
        #: Optional observer (repro.tso.observer): called with the lines
        #: that just became globally visible, atomically.
        self.visibility_hook: Optional[
            Callable[[List[int], int], None]] = None
        self.c_l2_updates = stats.counter(
            "l2_updates", "explicit L1D-to-L2 data updates (TUS/SSB)")
        self.c_uncached_fills = stats.counter(
            "uncached_fills", "fills served without caching (set pinned)")
        self.c_load_stall_unauth = stats.counter(
            "loads_aliased_unauthorized",
            "loads that waited for an unauthorized line's permission")
        self.c_l1d_forwards = stats.counter(
            "l1d_unauthorized_forwards",
            "loads served from unauthorized L1D data (optional feature)")
        #: Requests parked because the MSHR file was full, retried on
        #: every fill completion.
        self._pending: deque = deque()
        self._pending_writes: Dict[int, int] = {}
        self.probe = NULL_PROBE

    # -- queries ----------------------------------------------------------
    def line(self, addr: int) -> Optional[CacheLine]:
        return self.l1d.probe(addr)

    def is_writable(self, addr: int) -> bool:
        line = self.l1d.probe(addr)
        return line is not None and line.state >= State.E

    def is_writable_private(self, addr: int) -> bool:
        """Write permission anywhere in this private hierarchy (L1D or
        L2) — what SSB's TSOB drain needs, since it writes to the L2."""
        if self.is_writable(addr):
            return True
        l2line = self.l2.probe(addr)
        return l2line is not None and l2line.state >= State.E

    # -- loads --------------------------------------------------------------
    def load(self, addr: int, cycle: int,
             on_done: Callable[[int], None], size: int = 8) -> None:
        """Issue a demand load; ``on_done`` fires with the data-ready cycle.

        Store-to-load forwarding from the SB/WCBs is the core's job and
        happens before the load reaches this port.
        """
        cfg = self.system.config.memory
        if self.prefetcher is not None:
            for target in self.prefetcher.observe(addr):
                self.request_read(target, cycle, prefetch=True)
        line = self.l1d.lookup(addr, cycle=cycle)
        if line is not None:
            if line.not_visible and not line.ready:
                # Unauthorized data without permission.  With the
                # optional L1D forwarding feature (Section IV, "Other
                # considerations" — the paper evaluated and disabled
                # it), bytes covered by the local write mask can be
                # served directly; otherwise the load aliases to the
                # line and is serviced when the permission arrives.
                if (self.system.config.tus.l1d_forwarding
                        and self._mask_covers(line, addr, size)):
                    self.c_l1d_forwards.inc()
                    self.l1d.record_read()
                    on_done(cycle + cfg.l1d.latency)
                    return
                self.c_load_stall_unauth.inc()
                self._wait_for_fill(addr, False, cycle, on_done)
                return
            line.prefetched = False
            self.l1d.record_read()
            on_done(cycle + cfg.l1d.latency)
            return
        self._wait_for_fill(addr, False, cycle, on_done)

    @staticmethod
    def _mask_covers(line: CacheLine, addr: int, size: int) -> bool:
        offset = addr & ~LINE_MASK
        if offset + size > 64:
            return False
        mask = ((1 << size) - 1) << offset
        return line.write_mask & mask == mask

    def _wait_for_fill(self, addr: int, is_write: bool, cycle: int,
                       on_done: Callable[[int], None]) -> None:
        entry = self.mshrs.allocate(addr, is_write, cycle)
        if entry is None:
            # MSHR file full: park the request; it is retried whenever a
            # fill frees an entry (no polling).
            self._pending.append((addr, is_write, on_done))
            return
        fresh = not entry.waiters and not entry.meta.get("launched")
        entry.waiters.append(on_done)
        if fresh:
            entry.meta["launched"] = True
            entry.meta["write"] = is_write
            self._launch(addr, is_write, cycle)

    def _retry_pending(self, cycle: int) -> None:
        """Drain parked requests into freed MSHRs (oldest first)."""
        budget = len(self._pending)   # each parked entry retried once
        while self._pending and budget > 0:
            budget -= 1
            addr, is_write, on_done = self._pending[0]
            if is_write:
                self._pending.popleft()
                count = self._pending_writes.get(addr, 1) - 1
                if count:
                    self._pending_writes[addr] = count
                else:
                    self._pending_writes.pop(addr, None)
                # Re-enters through request_write so read-in-flight
                # chaining and the writable fast path apply.
                self.request_write(addr, cycle, on_done)
                continue
            line = self.l1d.probe(addr)
            if (line is not None
                    and (not line.not_visible or line.ready)):
                # The line arrived while the request was parked.
                self._pending.popleft()
                self.l1d.record_read()
                on_done(cycle + self.system.config.memory.l1d.latency)
                continue
            entry = self.mshrs.allocate(addr, is_write, cycle)
            if entry is None:
                return
            self._pending.popleft()
            fresh = not entry.meta.get("launched")
            entry.waiters.append(on_done)
            if fresh:
                entry.meta["launched"] = True
                entry.meta["write"] = is_write
                self._launch(addr, is_write, cycle)

    # -- stores -------------------------------------------------------------
    def request_write(self, addr: int, cycle: int,
                      on_done: Optional[Callable[[int], None]] = None,
                      prefetch: bool = False) -> bool:
        """Acquire write permission (GetX/Upgrade) for ``addr``.

        Returns False when the request could not even be queued (MSHR file
        full and no existing entry) — for prefetches that means the hint is
        dropped; demand users simply retry next cycle.
        """
        if self.is_writable(addr):
            if on_done is not None:
                on_done(cycle)
            return True
        existing = self.mshrs.get(addr)
        if existing is not None and existing.meta.get("launched") \
                and not existing.meta.get("write"):
            # A read transaction is already in flight for this line; it
            # will grant at most S.  Chain: when it fills, re-request
            # the write permission (which then issues an Upgrade).
            existing.waiters.append(
                lambda c, a=addr: self.request_write(a, c, on_done,
                                                     prefetch))
            return True
        entry = self.mshrs.allocate(addr, True, cycle, prefetch=prefetch)
        if entry is None:
            if prefetch:
                return False   # hints are droppable
            # Demand write requests park until an MSHR frees up.
            addr &= LINE_MASK
            self._pending.append(
                (addr, True, on_done if on_done is not None
                 else (lambda c: None)))
            self._pending_writes[addr] = \
                self._pending_writes.get(addr, 0) + 1
            return True
        fresh = not entry.meta.get("launched")
        if on_done is not None:
            entry.waiters.append(on_done)
        if fresh:
            entry.meta["launched"] = True
            entry.meta["write"] = True
            self._launch(addr, True, cycle)
        return True

    def request_read(self, addr: int, cycle: int,
                     prefetch: bool = False) -> bool:
        """Issue a read (GetS) prefetch; drops silently if resources full."""
        if self.l1d.probe(addr) is not None:
            return True
        entry = self.mshrs.allocate(addr, False, cycle, prefetch=prefetch)
        if entry is None:
            return False
        if not entry.meta.get("launched"):
            entry.meta["launched"] = True
            self._launch(addr, False, cycle, prefetch=True)
        return True

    def write_hit(self, addr: int, cycle: int) -> None:
        """Perform a store into a line the core has permission for."""
        line = self.l1d.probe(addr)
        if line is None or line.state < State.E:
            raise ProtocolError(
                f"core {self.core_id}: write_hit without permission "
                f"at {addr:#x}")
        line.state = State.M
        line.prefetched = False
        self.l1d.policy.touch(line, cycle)
        self.l1d.record_write()
        if self.probe:
            self.probe.emit(cycle, "store:visible", lines=[line.addr])
        if self.visibility_hook is not None:
            self.visibility_hook([line.addr], cycle)

    def write_request_outstanding(self, addr: int) -> bool:
        """Is a write-permission acquisition in flight (or parked) for
        ``addr``?  Drain paths use this to avoid both duplicate requests
        and lost wake-ups when a granted line is stolen before use."""
        if addr & LINE_MASK in self._pending_writes:
            return True
        entry = self.mshrs.get(addr)
        return entry is not None and entry.is_write

    def update_l2(self, addr: int) -> None:
        """Push the current L1D data for ``addr`` down to the private L2.

        TUS does this before overwriting a visible modified line with
        unauthorized data (the L2 must keep a valid *authorized* copy);
        SSB does it for every store it drains.
        """
        self.c_l2_updates.inc()
        self.l2.record_write()

    # -- transaction launch ---------------------------------------------------
    def _launch(self, addr: int, is_write: bool, cycle: int,
                prefetch: bool = False) -> None:
        cfg = self.system.config.memory
        l2line = self.l2.lookup(addr, cycle=cycle)
        if l2line is not None and (not is_write or l2line.state >= State.E):
            # Private L2 satisfies the request.
            self.l2.record_read()
            state = l2line.state if is_write else (
                State.S if l2line.state == State.S else State.E)
            done = cycle + cfg.l2.latency
            self.system.events.schedule(
                done, lambda: self._fill(addr, max(state, State.E) if is_write
                                         else state, done, None),
                label=f"l2fill:{addr:#x}", actor=self.core_id)
            return
        req = ReqType.GETX if is_write else ReqType.GETS
        if is_write and (l2line is not None or self.l1d.probe(addr)):
            req = ReqType.UPGRADE
        leave_l2 = cycle + cfg.l2.latency
        self.system.start_transaction(req, addr, self.core_id, leave_l2,
                                      lambda done: None, prefetch)

    def _fill(self, addr: int, state: State, cycle: int,
              _unused: Optional[Callable[[int], None]]) -> None:
        """A fill (data and/or permission) arrives at this private
        hierarchy; install in L2 and L1D and wake the MSHR waiters."""
        self._install_l2(addr, state, cycle)
        line = self.l1d.probe(addr)
        if line is not None:
            self._upgrade_l1_line(line, state, cycle)
        else:
            line = self._install_l1(addr, state, cycle)
        for waiter in self.mshrs.complete(addr, cycle):
            waiter(cycle)
        self._retry_pending(cycle)

    def _upgrade_l1_line(self, line: CacheLine, state: State,
                         cycle: int) -> None:
        if line.not_visible:
            if state < State.E:
                # A read fill reached an unauthorized line (e.g. a load
                # to a relinquished line): data arrives but no write
                # permission — the line stays unauthorized.
                return
            # TUS: permission/data arrives for a line holding unauthorized
            # data.  Combine (mask-guided) and hand control to the WOQ.
            line.state = State.M
            line.ready = True
            self.l1d.record_write()   # the combine writes the data array
            if self.fill_hook is not None:
                self.fill_hook(line.addr, line, cycle)
            return
        if state >= State.E and line.state < State.E:
            line.state = State.E
        elif not line.state:
            line.state = state
        self.l1d.policy.touch(line, cycle)

    def _install_l1(self, addr: int, state: State,
                    cycle: int) -> Optional[CacheLine]:
        if not self.l1d.has_free_way(addr):
            # Every way is pinned (locked or unauthorized): serve the data
            # without caching it.
            self.c_uncached_fills.inc()
            return None
        line = self.l1d.allocate(addr, state, cycle,
                                 on_evict=self._evict_from_l1)
        self.l1d.record_write()
        return line

    def _install_l2(self, addr: int, state: State, cycle: int) -> None:
        l2line = self.l2.probe(addr)
        if l2line is not None:
            if state >= State.E and l2line.state < State.E:
                l2line.state = State.E
            self.l2.policy.touch(l2line, cycle)
            return
        if not self.l2.has_free_way(addr):
            return
        self.l2.allocate(addr, state, cycle, on_evict=self._evict_from_l2,
                         veto=self._l2_victim_veto)
        self.l2.record_write()

    def _l2_victim_veto(self, victim: CacheLine) -> bool:
        """The L2 may not evict a line whose L1D copy is not-visible: the
        back-invalidation would be NACKed (Section III-C), so the
        replacement policy must propose someone else."""
        l1copy = self.l1d.probe(victim.addr)
        return l1copy is not None and l1copy.not_visible

    def _evict_from_l1(self, victim: CacheLine) -> None:
        if victim.dirty:
            # Writeback to the (inclusive) private L2.
            l2line = self.l2.probe(victim.addr)
            if l2line is not None:
                l2line.state = State.M
            self.l2.record_write()

    def _evict_from_l2(self, victim: CacheLine) -> None:
        # Inclusive hierarchy: back-invalidate the L1D copy.
        l1copy = self.l1d.probe(victim.addr)
        dirty = victim.dirty
        if l1copy is not None:
            if l1copy.not_visible:
                raise ProtocolError("evicted an L2 line pinned by TUS")
            dirty = dirty or l1copy.dirty
            self.l1d.invalidate(victim.addr)
        if dirty:
            self._writeback_shared(victim.addr)
        entry = self.system.directory.lookup(victim.addr)
        if entry is not None and not entry.busy:
            entry.sharers.discard(self.core_id)
            if entry.owner == self.core_id:
                entry.owner = None

    def _writeback_shared(self, addr: int) -> None:
        l3line = self.system.l3.probe(addr)
        if l3line is not None:
            l3line.state = State.M
        self.system.l3.record_write()

    # -- snoops ---------------------------------------------------------------
    def _snoop(self, addr: int, kind: SnoopKind, requester: int,
               cycle: int) -> SnoopReply:
        line = self.l1d.probe(addr)
        if line is not None and line.not_visible:
            if self.snoop_hook is None:
                raise ProtocolError(
                    "snoop hit a not-visible line but no TUS hook is set")
            return self.snoop_hook(addr, kind, requester, cycle)
        if (line is not None and self.hold_hook is not None
                and self.hold_hook(addr, kind, requester, cycle)):
            return SnoopReply(SnoopResult.DELAY)
        return self._snoop_normal(addr, kind, line)

    def _snoop_normal(self, addr: int, kind: SnoopKind,
                      line: Optional[CacheLine]) -> SnoopReply:
        dirty = False
        l2line = self.l2.probe(addr)
        if kind == SnoopKind.INVALIDATE:
            if line is not None:
                dirty = line.dirty
                self.l1d.invalidate(addr)
            if l2line is not None:
                dirty = dirty or l2line.dirty
                self.l2.invalidate(addr)
        else:  # downgrade to shared
            if line is not None:
                dirty = line.dirty
                line.state = State.S
            if l2line is not None:
                dirty = dirty or l2line.dirty
                l2line.state = State.S
        return SnoopReply(SnoopResult.ACK_DATA if dirty else SnoopResult.ACK,
                          had_dirty=dirty)
