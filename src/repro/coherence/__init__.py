"""Coherence substrate: MESI directory, memory system, snoop vocabulary."""

from .directory import DirEntry, Directory
from .memsys import CorePort, MemorySystem
from .msgs import ReqType, SnoopKind, SnoopReply, SnoopResult, Transaction

__all__ = ["DirEntry", "Directory", "CorePort", "MemorySystem", "ReqType",
           "SnoopKind", "SnoopReply", "SnoopResult", "Transaction"]
