"""Prefetchers.

The baseline L1D has a *stream (stride) prefetcher* for loads (Table I).
We implement a classic reference-prediction table: streams are detected
per address region; once a stable stride is seen twice, the prefetcher
issues ``degree`` prefetches ahead of the demand stream.

Store-side prefetching (prefetch-at-commit and SPB's page bursts) lives
with the store mechanisms, because it is part of what the paper varies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..common.addr import LINE_MASK, LINE_SIZE
from ..common.stats import StatGroup


@dataclass
class _Stream:
    last_addr: int
    stride: int = 0
    confidence: int = 0


class StreamPrefetcher:
    """Stride-based stream prefetcher with a small stream table."""

    def __init__(self, degree: int = 2, table_size: int = 16,
                 stats: Optional[StatGroup] = None) -> None:
        if degree < 1:
            raise ValueError("prefetch degree must be positive")
        self.degree = degree
        self.table_size = table_size
        self._streams: List[_Stream] = []
        stats = stats if stats is not None else StatGroup("prefetcher")
        self._issued = stats.counter("issued", "prefetches issued")
        self._trained = stats.counter("trained", "streams that locked a stride")

    def observe(self, addr: int) -> List[int]:
        """Record a demand access; return line addresses to prefetch."""
        addr &= LINE_MASK
        stream = self._find_stream(addr)
        if stream is None:
            self._streams.append(_Stream(addr))
            if len(self._streams) > self.table_size:
                self._streams.pop(0)
            return []
        stride = addr - stream.last_addr
        if stride == 0:
            return []
        if stride == stream.stride:
            stream.confidence += 1
        else:
            stream.stride = stride
            stream.confidence = 1
        stream.last_addr = addr
        if stream.confidence < 2:
            return []
        if stream.confidence == 2:
            self._trained.inc()
        targets = [addr + stream.stride * (i + 1) for i in range(self.degree)]
        targets = [t for t in targets if t >= 0]
        self._issued.inc(len(targets))
        return targets

    def _find_stream(self, addr: int) -> Optional[_Stream]:
        # Match a stream whose next expected access is within a small
        # window of the observed address (classic stream-table matching).
        window = 16 * LINE_SIZE
        for stream in self._streams:
            if abs(addr - stream.last_addr) <= window:
                return stream
        return None
