"""Cache-line bookkeeping: coherence state plus the TUS-specific bits.

A :class:`CacheLine` models the per-line metadata of a cache entry.  On
top of the usual MESI state it carries the two extra bits TUS adds to the
L1D (Section IV):

* ``not_visible`` — the line holds unauthorized store data and must be
  hidden from the coherence protocol (it cannot be replaced, forwarded,
  or invalidated while set);
* ``ready`` — write permission has arrived and the unauthorized data has
  been combined with the memory copy, but the line has not yet been made
  visible because an older WOQ atomic group is still pending.

The simulator does not track data values byte-for-byte (timing model);
it tracks the *byte mask* of locally written bytes, which is what the
combine step and store-to-load forwarding decisions need.  Functional
values for the TSO checker are tracked separately by ``repro.tso``.
"""

from __future__ import annotations

import enum
from typing import Optional


class State(enum.IntEnum):
    """MESI stable states (plus Invalid)."""

    I = 0
    S = 1
    E = 2
    M = 3

    @property
    def writable(self) -> bool:
        return self in (State.E, State.M)

    @property
    def valid(self) -> bool:
        return self != State.I


class CacheLine:
    """Metadata for one allocated cache entry."""

    __slots__ = ("addr", "state", "not_visible", "ready", "locked",
                 "write_mask", "prefetched", "last_touch")

    def __init__(self, addr: int, state: State = State.I) -> None:
        self.addr = addr
        self.state = state
        #: TUS: unauthorized data present; hidden from coherence.
        self.not_visible = False
        #: TUS: permission arrived and data combined, awaiting visibility.
        self.ready = False
        #: Transient lock (an MSHR transaction owns this entry).
        self.locked = False
        #: Byte mask of locally written (unauthorized) data.
        self.write_mask = 0
        #: The line was brought in by a prefetch and not yet demanded.
        self.prefetched = False
        #: Replacement timestamp (maintained by the replacement policy).
        self.last_touch = 0

    @property
    def dirty(self) -> bool:
        return self.state == State.M

    @property
    def replaceable(self) -> bool:
        """A line can be chosen as a victim unless it is locked or holds
        unauthorized (not yet visible) data — the only copy of that data."""
        return not self.locked and not self.not_visible

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join((
            "n" if self.not_visible else "-",
            "r" if self.ready else "-",
            "l" if self.locked else "-",
        ))
        return f"Line({self.addr:#x} {self.state.name} {flags})"
