"""A simple DRAM model: fixed access latency plus a bandwidth gap.

The paper's configuration specifies a 160-cycle DRAM latency (Table I).
We add a configurable minimum gap between data returns (``dram_gap``) so
that bursts of misses serialise at the memory controller — without this,
store bursts would be unrealistically cheap for every mechanism and the
burst-driven gaps between mechanisms (gcc, ferret) would not appear.

Scaled machines split the controller into independent channels, each
with its own bandwidth queue.  Lines are interleaved across channels by
the same low lex-order bits that pick the directory home, so a home
node's misses land on "its" channel (home-affine NUMA); the interconnect
hop cost between home and channel is charged by the caller (the
transaction engine owns the topology).  A single-channel DRAM behaves
exactly like the pre-channel model, counters included.
"""

from __future__ import annotations

from typing import Optional

from ..common.addr import LEX_MASK, line_index
from ..common.stats import StatGroup
from ..faults.plan import NULL_FAULTS


class DRAM:
    """Fixed-latency, bandwidth-limited memory with N channels."""

    def __init__(self, latency: int, gap: int, channels: int = 1,
                 stats: Optional[StatGroup] = None) -> None:
        if latency < 1:
            raise ValueError("DRAM latency must be positive")
        if gap < 0:
            raise ValueError("DRAM gap cannot be negative")
        if channels < 1 or channels & (channels - 1):
            raise ValueError("DRAM channels must be a power of two")
        self.latency = latency
        self.gap = gap
        self.channels = channels
        self._free_at = [0] * channels
        stats = stats if stats is not None else StatGroup("dram")
        self._accesses = stats.counter("accesses")
        self._queue_cycles = stats.counter(
            "queue_cycles", "cycles spent waiting for bandwidth")
        # Per-channel counters only exist on multi-channel configs so
        # the default machine's flattened stats (and hence every
        # committed benchmark fingerprint) keep their exact shape.
        self._ch_accesses = (
            [stats.child(f"ch{ch}").counter("accesses")
             for ch in range(channels)] if channels > 1 else None)
        #: Fault-injection hook (repro.faults).
        self.faults = NULL_FAULTS

    def channel_of(self, addr: int) -> int:
        """The channel owning ``addr`` (low lex-order bits, matching the
        directory's home interleave)."""
        return line_index(addr) & LEX_MASK & (self.channels - 1)

    def access(self, cycle: int, channel: int = 0) -> int:
        """Issue an access at ``cycle`` on ``channel``; return its
        completion cycle."""
        self._accesses.inc()
        if self._ch_accesses is not None:
            self._ch_accesses[channel].inc()
        start = max(cycle, self._free_at[channel])
        self._queue_cycles.inc(start - cycle)
        self._free_at[channel] = start + self.gap
        done = start + self.latency
        if self.faults:
            done += self.faults.delay("dram-jitter")
        return done

    @property
    def accesses(self) -> int:
        return self._accesses.value

    # Backwards compatibility: tests and the model checker's state
    # encoder historically read/wrote the single bandwidth cursor.
    @property
    def _next_free(self) -> int:
        return self._free_at[0]

    @_next_free.setter
    def _next_free(self, value: int) -> None:
        self._free_at[0] = value
