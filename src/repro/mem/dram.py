"""A simple DRAM model: fixed access latency plus a bandwidth gap.

The paper's configuration specifies a 160-cycle DRAM latency (Table I).
We add a configurable minimum gap between data returns (``dram_gap``) so
that bursts of misses serialise at the memory controller — without this,
store bursts would be unrealistically cheap for every mechanism and the
burst-driven gaps between mechanisms (gcc, ferret) would not appear.
"""

from __future__ import annotations

from typing import Optional

from ..common.stats import StatGroup
from ..faults.plan import NULL_FAULTS


class DRAM:
    """Fixed-latency, bandwidth-limited memory."""

    def __init__(self, latency: int, gap: int,
                 stats: Optional[StatGroup] = None) -> None:
        if latency < 1:
            raise ValueError("DRAM latency must be positive")
        if gap < 0:
            raise ValueError("DRAM gap cannot be negative")
        self.latency = latency
        self.gap = gap
        self._next_free = 0
        stats = stats if stats is not None else StatGroup("dram")
        self._accesses = stats.counter("accesses")
        self._queue_cycles = stats.counter(
            "queue_cycles", "cycles spent waiting for bandwidth")
        #: Fault-injection hook (repro.faults).
        self.faults = NULL_FAULTS

    def access(self, cycle: int) -> int:
        """Issue an access at ``cycle``; return its completion cycle."""
        self._accesses.inc()
        start = max(cycle, self._next_free)
        self._queue_cycles.inc(start - cycle)
        self._next_free = start + self.gap
        done = start + self.latency
        if self.faults:
            done += self.faults.delay("dram-jitter")
        return done

    @property
    def accesses(self) -> int:
        return self._accesses.value
