"""A set-associative cache array.

This is the storage model shared by L1I, L1D, L2 and L3.  It tracks line
metadata (state, TUS bits, masks) and implements lookup / allocation /
eviction with a pluggable replacement policy.  Timing lives in the
controllers (``repro.coherence``), not here.

Sets are materialised lazily so that a 64MB L3 costs memory proportional
to the lines actually touched.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

from ..common.addr import LINE_MASK, LINE_SHIFT, line_addr, set_index
from ..common.config import CacheConfig
from ..common.stats import StatGroup
from .cacheline import CacheLine, State
from .replacement import LRU, ReplacementPolicy


class CacheArray:
    """Storage and metadata of one cache level."""

    def __init__(self, config: CacheConfig,
                 policy: Optional[ReplacementPolicy] = None,
                 stats: Optional[StatGroup] = None) -> None:
        config.validate()
        self.config = config
        self.policy = policy if policy is not None else LRU()
        self._sets: Dict[int, List[CacheLine]] = {}
        # Hoisted constants for the lookup/probe hot loops.
        self._set_mask = config.num_sets - 1
        self._assoc = config.assoc
        stats = stats if stats is not None else StatGroup(config.name)
        self.stats = stats
        self._hits = stats.counter("hits", "lookups that found a valid line")
        self._misses = stats.counter("misses", "lookups that missed")
        self._evictions = stats.counter("evictions", "lines evicted")
        self._writebacks = stats.counter("writebacks", "dirty evictions")
        self._reads = stats.counter("reads", "data-array read accesses")
        self._writes = stats.counter("writes", "data-array write accesses")
        stats.formula("miss_rate", self.miss_rate,
                      "misses / (hits + misses)")

    # -- basic access ------------------------------------------------------
    def set_of(self, addr: int) -> List[CacheLine]:
        """Return (creating if needed) the set holding ``addr``."""
        idx = (addr >> LINE_SHIFT) & self._set_mask
        lines = self._sets.get(idx)
        if lines is None:
            lines = []
            self._sets[idx] = lines
        return lines

    def lookup(self, addr: int, touch: bool = True,
               cycle: int = 0) -> Optional[CacheLine]:
        """Return the valid line holding ``addr``, or None.

        Counts a hit or a miss; pass ``touch=False`` for snoops and other
        probes that should not perturb replacement state or hit counters.
        """
        addr &= LINE_MASK
        lines = self._sets.get((addr >> LINE_SHIFT) & self._set_mask)
        if lines:
            for line in lines:
                # Lines holding unauthorized data (not_visible) are found
                # even in state I: they are invisible to *coherence*, not
                # to the local controller that must coalesce into /
                # combine them.  ``line.state`` is an IntEnum, so its
                # truthiness is exactly "state != I" (validity).
                if line.addr == addr and (line.state or line.not_visible):
                    if touch:
                        self._hits.value += 1
                        self.policy.touch(line, cycle)
                    return line
        if touch:
            self._misses.value += 1
        return None

    def probe(self, addr: int) -> Optional[CacheLine]:
        """Side-effect-free lookup (no stats, no replacement update)."""
        addr &= LINE_MASK
        lines = self._sets.get((addr >> LINE_SHIFT) & self._set_mask)
        if lines:
            for line in lines:
                if line.addr == addr and (line.state or line.not_visible):
                    return line
        return None

    def record_read(self) -> None:
        """Count one data-array read (for the energy model)."""
        self._reads.inc()

    def record_write(self) -> None:
        """Count one data-array write (for the energy model)."""
        self._writes.inc()

    # -- allocation ----------------------------------------------------------
    def has_free_way(self, addr: int) -> bool:
        """True if ``addr``'s set can accept a new line without evicting a
        non-replaceable entry."""
        lines = self.set_of(addr)
        if len(lines) < self._assoc:
            return True
        return any(line.replaceable for line in lines)

    def free_ways(self, addr: int) -> int:
        """Number of ways in ``addr``'s set that could take a new line."""
        lines = self.set_of(addr)
        unallocated = self._assoc - len(lines)
        return unallocated + sum(1 for line in lines if line.replaceable)

    def choose_victim(self, addr: int,
                      veto: Optional[Callable[[CacheLine], bool]] = None
                      ) -> Optional[CacheLine]:
        """Return the line to evict to make room for ``addr``.

        ``veto`` rejects candidates the caller may not evict (e.g. the L2
        refusing victims whose L1D copy is not-visible — the paper's
        NACK-and-refresh behaviour).  Returns None either when no eviction
        is needed (a way is free) or when every line is pinned; callers
        distinguish via :meth:`has_free_way`.
        """
        lines = self.set_of(addr)
        if len(lines) < self._assoc:
            return None
        for victim in self.policy.victims(lines):
            if veto is None or not veto(victim):
                return victim
        return None

    def allocate(self, addr: int, state: State, cycle: int = 0,
                 on_evict: Optional[Callable[[CacheLine], None]] = None,
                 veto: Optional[Callable[[CacheLine], bool]] = None
                 ) -> CacheLine:
        """Install ``addr`` with ``state``, evicting if required.

        ``on_evict`` is called with the victim (for writebacks and
        inclusion enforcement) before it is removed; ``veto`` filters
        victim candidates as in :meth:`choose_victim`.  Raises
        ``LookupError`` if the set is full of non-replaceable lines;
        callers must check :meth:`has_free_way` first on paths where that
        can happen.
        """
        addr &= LINE_MASK
        lines = self.set_of(addr)
        for line in lines:
            if line.addr == addr and (line.state or line.not_visible):
                raise LookupError(
                    f"{self.config.name}: {addr:#x} already present")
        if len(lines) >= self._assoc:
            victim = self.choose_victim(addr, veto)
            if victim is None:
                raise LookupError(
                    f"{self.config.name}: set for {addr:#x} has no victim")
            self._evict(victim, on_evict)
        line = CacheLine(addr, state)
        self.policy.touch(line, cycle)
        lines.append(line)
        return line

    def _evict(self, victim: CacheLine, on_evict) -> None:
        self._evictions.inc()
        if victim.dirty:
            self._writebacks.inc()
        if on_evict is not None:
            on_evict(victim)
        self.set_of(victim.addr).remove(victim)

    def invalidate(self, addr: int) -> Optional[CacheLine]:
        """Remove ``addr`` from the array; returns the removed line."""
        addr = line_addr(addr)
        lines = self.set_of(addr)
        for line in lines:
            if line.addr == addr:
                lines.remove(line)
                return line
        return None

    # -- iteration / inspection -------------------------------------------
    def __iter__(self) -> Iterator[CacheLine]:
        for lines in self._sets.values():
            yield from lines

    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(1 for line in self if line.state.valid)

    def miss_rate(self) -> float:
        total = self._hits.value + self._misses.value
        return self._misses.value / total if total else 0.0
