"""Replacement policies for set-associative caches.

Policies rank the *replaceable* lines of a set (locked or not-visible
lines are never victims — see :attr:`repro.mem.cacheline.CacheLine
.replaceable`).  They also support the TUS "refresh" operation
(Section III-C): when an L2 victim choice would violate lex order the
eviction is NACKed and the policy must propose a different victim, so
``victims`` yields candidates in preference order rather than returning
a single line.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from .cacheline import CacheLine


class ReplacementPolicy:
    """Interface: rank victim candidates and record touches."""

    def touch(self, line: CacheLine, cycle: int) -> None:
        """Record a use of ``line`` at ``cycle``."""
        raise NotImplementedError

    def victims(self, lines: List[CacheLine]) -> Iterator[CacheLine]:
        """Yield replaceable lines of a set in preference order."""
        raise NotImplementedError

    def victim(self, lines: List[CacheLine]) -> Optional[CacheLine]:
        """Return the best victim, or None if nothing is replaceable."""
        for line in self.victims(lines):
            return line
        return None


class LRU(ReplacementPolicy):
    """Least-recently-used via per-line timestamps."""

    def __init__(self) -> None:
        self._clock = 0

    def touch(self, line: CacheLine, cycle: int) -> None:
        # A private monotonic clock breaks ties between same-cycle touches.
        self._clock += 1
        line.last_touch = self._clock

    def victims(self, lines: List[CacheLine]) -> Iterator[CacheLine]:
        candidates = [l for l in lines if l.replaceable]
        candidates.sort(key=lambda l: l.last_touch)
        return iter(candidates)


class MRU(ReplacementPolicy):
    """Most-recently-used; useful for adversarial tests."""

    def __init__(self) -> None:
        self._clock = 0

    def touch(self, line: CacheLine, cycle: int) -> None:
        self._clock += 1
        line.last_touch = self._clock

    def victims(self, lines: List[CacheLine]) -> Iterator[CacheLine]:
        candidates = [l for l in lines if l.replaceable]
        candidates.sort(key=lambda l: -l.last_touch)
        return iter(candidates)


class RandomReplacement(ReplacementPolicy):
    """Uniform random victim selection with a deterministic seed."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def touch(self, line: CacheLine, cycle: int) -> None:
        line.last_touch = cycle

    def victims(self, lines: List[CacheLine]) -> Iterator[CacheLine]:
        candidates = [l for l in lines if l.replaceable]
        self._rng.shuffle(candidates)
        return iter(candidates)


_POLICIES = {
    "lru": LRU,
    "mru": MRU,
    "random": RandomReplacement,
}


def make_policy(name: str, **kwargs) -> ReplacementPolicy:
    """Instantiate a replacement policy by name (``lru``/``mru``/``random``)."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(f"unknown replacement policy {name!r}") from None
    return cls(**kwargs)
