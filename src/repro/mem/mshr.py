"""Miss Status Holding Registers.

One MSHR tracks one outstanding miss on a cache line; secondary misses to
the same line merge into the existing entry.  Each waiter registers a
callback fired when the fill (or permission grant) completes.  A full
MSHR file back-pressures the requester, which is one of the occupancy
effects that make store bursts expensive in the baseline.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..common.addr import LINE_MASK
from ..common.stats import StatGroup
from ..faults.plan import NULL_FAULTS
from ..observe.bus import NULL_PROBE


class MSHREntry:
    """One in-flight miss."""

    __slots__ = ("addr", "is_write", "issued_cycle", "waiters", "meta")

    def __init__(self, addr: int, is_write: bool, issued_cycle: int) -> None:
        self.addr = addr
        self.is_write = is_write
        self.issued_cycle = issued_cycle
        self.waiters: List[Callable[[], None]] = []
        #: Free-form controller bookkeeping (e.g. retry state).
        self.meta: Dict[str, object] = {}


class MSHRFile:
    """A finite pool of MSHRs keyed by cache-line address.

    A few entries are reserved for *demand* requests: prefetch hints may
    not take the last ``demand_reserve`` MSHRs, so a flood of
    commit-time write prefetches can never starve the drain path or
    demand loads (they would otherwise retry behind an always-full
    file).
    """

    def __init__(self, capacity: int, stats: Optional[StatGroup] = None,
                 demand_reserve: int = 8) -> None:
        if capacity < 1:
            raise ValueError("MSHR file needs at least one entry")
        self.capacity = capacity
        self.demand_reserve = min(demand_reserve, capacity - 1)
        self._entries: Dict[int, MSHREntry] = {}
        stats = stats if stats is not None else StatGroup("mshr")
        self._allocs = stats.counter("allocations")
        self._merges = stats.counter("merges", "secondary misses merged")
        self._full_events = stats.counter("full", "allocation refused: full")
        self._latency = stats.histogram("latency", bucket_width=16,
                                        num_buckets=64,
                                        desc="miss latency distribution")
        self.probe = NULL_PROBE
        #: Fault-injection hook (repro.faults).
        self.faults = NULL_FAULTS

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def get(self, addr: int) -> Optional[MSHREntry]:
        return self._entries.get(addr & LINE_MASK)

    def allocate(self, addr: int, is_write: bool, cycle: int,
                 prefetch: bool = False) -> Optional[MSHREntry]:
        """Allocate (or merge into) an MSHR for ``addr``.

        Returns None when the file is full (or, for prefetches, when
        only the demand reserve is left) and no entry exists for the
        line.  An existing read entry is upgraded to a write entry if a
        write merges into it, so the eventual fill carries permissions.
        """
        addr &= LINE_MASK
        entry = self._entries.get(addr)
        if entry is not None:
            self._merges.inc()
            entry.is_write = entry.is_write or is_write
            return entry
        if self.faults and self._entries \
                and self.faults.refuse("mshr-full"):
            # Injected transient exhaustion.  Only legal while at least
            # one real miss is in flight: the refused request parks, and
            # parked requests are retried exactly when a fill completes —
            # so a guaranteed future fill is what keeps this live.
            # Bookkept on the FaultPlan, not the full-events counter.
            return None
        limit = self.capacity - (self.demand_reserve if prefetch else 0)
        if len(self._entries) >= limit:
            self._full_events.inc()
            if self.probe:
                self.probe.emit(cycle, "mshr:full", line=addr)
            return None
        entry = MSHREntry(addr, is_write, cycle)
        self._entries[addr] = entry
        self._allocs.inc()
        if self.probe:
            self.probe.emit(cycle, "mshr:alloc", line=addr, write=is_write,
                            occupancy=len(self._entries))
        return entry

    def complete(self, addr: int, cycle: int) -> List[Callable[[], None]]:
        """Retire the MSHR for ``addr`` and return its waiter callbacks.

        The caller fires the callbacks after installing the line, so
        waiters observe the post-fill cache state.
        """
        addr &= LINE_MASK
        entry = self._entries.pop(addr, None)
        if entry is None:
            return []
        self._latency.sample(cycle - entry.issued_cycle)
        if self.probe:
            self.probe.emit(cycle, "mshr:complete", line=addr,
                            latency=cycle - entry.issued_cycle,
                            occupancy=len(self._entries))
        return list(entry.waiters)
