"""Write Combining Buffers (WCBs).

Modern cores use WCBs to coalesce non-temporal stores; TUS and CSB
re-purpose them to coalesce *coherent* stores across multiple
non-consecutive cache lines while preserving x86-TSO (Section III-B).

The placement rules follow the paper:

* the store at the head of the SB coalesces into the buffer already
  holding its cache line, if any;
* otherwise it allocates a free buffer;
* writing to an existing buffer *different from the last buffer written*
  creates a store cycle, so all involved buffers are merged into one
  atomic group (their ``C_ID`` fields are unified);
* two lines with the same lex order may not join the same atomic group
  (a *lex conflict*); the store must wait until the conflicting line has
  been made visible;
* if no buffer matches and none is free, the buffers must be drained to
  the L1D before the store can proceed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..common.addr import lex_order, line_addr
from ..common.stats import StatGroup


class InsertResult(enum.Enum):
    """Outcome of offering a store to the WCB file."""

    COALESCED = "coalesced"          # merged into an existing buffer
    ALLOCATED = "allocated"          # took a free buffer
    NEED_FLUSH = "need_flush"        # no room: drain buffers first
    LEX_CONFLICT = "lex_conflict"    # would create a lex conflict: wait


@dataclass(slots=True)
class WCBEntry:
    """One write-combining buffer."""

    addr: int                 # cache-line address
    mask: int                 # byte mask of combined writes
    group: int                # C_ID: buffers with equal group form one atomic group
    stores: int = 1           # stores coalesced into this buffer


class WCBFile:
    """A small file of write-combining buffers with atomic-group tracking."""

    def __init__(self, num_buffers: int,
                 stats: Optional[StatGroup] = None) -> None:
        if num_buffers < 1:
            raise ValueError("need at least one WCB")
        self.num_buffers = num_buffers
        self.buffers: List[WCBEntry] = []
        self._last_written: Optional[int] = None   # line addr of last insert
        self._next_group = 0
        stats = stats if stats is not None else StatGroup("wcb")
        self._coalesced = stats.counter(
            "coalesced", "stores merged into an existing buffer")
        self._allocated = stats.counter("allocated", "buffers allocated")
        self._cycles_formed = stats.counter(
            "cycles", "atomic groups formed by store cycles")
        self._lex_conflicts = stats.counter(
            "lex_conflicts", "stores delayed by a lex conflict")
        self._searches = stats.counter(
            "searches", "WCB associative searches (loads + stores)")

    def __len__(self) -> int:
        return len(self.buffers)

    @property
    def empty(self) -> bool:
        return not self.buffers

    @property
    def full(self) -> bool:
        return len(self.buffers) >= self.num_buffers

    def find(self, addr: int) -> Optional[WCBEntry]:
        """Associative search for the buffer holding ``addr``'s line."""
        self._searches.value += 1
        addr = line_addr(addr)
        for entry in self.buffers:
            if entry.addr == addr:
                return entry
        return None

    def insert(self, addr: int, mask: int) -> InsertResult:
        """Offer a committed store to the WCBs; see class docstring."""
        addr = line_addr(addr)
        entry = self.find(addr)
        if entry is not None:
            result = self._coalesce(entry, mask)
        elif not self.full:
            result = self._allocate(addr, mask)
        else:
            return InsertResult.NEED_FLUSH
        return result

    def _coalesce(self, entry: WCBEntry, mask: int) -> InsertResult:
        if self._last_written is not None and self._last_written != entry.addr:
            # A store cycle: the intervening buffers must become one
            # atomic group with this one — unless that would put two
            # lex-conflicting lines in the same group.
            if self._group_lex_conflict(entry):
                self._lex_conflicts.inc()
                return InsertResult.LEX_CONFLICT
            self._merge_groups(entry.group)
            self._cycles_formed.inc()
        entry.mask |= mask
        entry.stores += 1
        self._last_written = entry.addr
        self._coalesced.value += 1
        return InsertResult.COALESCED

    def _allocate(self, addr: int, mask: int) -> InsertResult:
        self.buffers.append(WCBEntry(addr, mask, self._next_group))
        self._next_group += 1
        self._last_written = addr
        self._allocated.inc()
        return InsertResult.ALLOCATED

    def _group_lex_conflict(self, target: WCBEntry) -> bool:
        """Would merging all buffers into ``target``'s group create a lex
        conflict (two distinct lines with equal lex order)?"""
        orders: Dict[int, int] = {}
        for entry in self.buffers:
            order = lex_order(entry.addr)
            if order in orders and orders[order] != entry.addr:
                return True
            orders[order] = entry.addr
        return False

    def _merge_groups(self, group: int) -> None:
        for entry in self.buffers:
            entry.group = group

    def drain_groups(self) -> List[List[WCBEntry]]:
        """Remove and return all buffers, clustered by atomic group.

        Groups come back in allocation order, which is the order the WOQ
        must make them visible in.
        """
        groups: Dict[int, List[WCBEntry]] = {}
        for entry in self.buffers:
            groups.setdefault(entry.group, []).append(entry)
        self.buffers = []
        self._last_written = None
        return [groups[g] for g in sorted(groups)]

    def reset(self) -> None:
        self.buffers = []
        self._last_written = None
