"""Memory substrate: cache arrays, MSHRs, DRAM, WCBs, prefetchers."""

from .cache import CacheArray
from .cacheline import CacheLine, State
from .dram import DRAM
from .mshr import MSHREntry, MSHRFile
from .prefetcher import StreamPrefetcher
from .replacement import (LRU, MRU, RandomReplacement, ReplacementPolicy,
                          make_policy)
from .wcb import InsertResult, WCBEntry, WCBFile

__all__ = [
    "CacheArray", "CacheLine", "State", "DRAM", "MSHREntry", "MSHRFile",
    "StreamPrefetcher", "LRU", "MRU", "RandomReplacement",
    "ReplacementPolicy", "make_policy", "InsertResult", "WCBEntry",
    "WCBFile",
]
