"""Chrome-trace-event / Perfetto JSON export.

Turns one traced run into a ``{"traceEvents": [...]}`` document that
loads directly in ``ui.perfetto.dev`` (or ``chrome://tracing``):

* one *process* per core plus one for the shared memory system;
* per-store lifecycle slices (``in-SB``, ``post-SB``) as async events,
  so overlapping stores need no artificial nesting;
* *flow arrows* stitching one store across SB exit -> unauthorized L1D
  write (WOQ) -> global visibility -> the directory transaction that
  granted the permission;
* coherence transactions as complete (``X``) slices on the memory
  system process, one thread per requesting core;
* counter (``C``) tracks from the interval sampler: SB / post-SB / MSHR
  occupancy and per-interval stall attribution;
* instant (``i``) marks for TUS delays, relinquishes and MSHR-full
  refusals.

Cycle numbers are emitted directly as the microsecond ``ts`` field —
1 cycle renders as 1us, which keeps the timeline integer-exact.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .bus import TraceEvent
from .lifecycle import StoreRecord

#: Process id hosting the coherence/directory tracks.
PID_MEMSYS = 1000
#: Thread ids inside a core's process.
TID_PIPE = 1      # dispatch/commit side (store slices start here)
TID_SB = 2        # store-buffer residency slices
TID_POSTSB = 3    # WCB/WOQ/TSOB residency slices

#: ph values this exporter emits (the validator accepts exactly these).
_PHASES = ("M", "b", "e", "X", "C", "i", "s", "t", "f")

_TXN_STARTS = ("dir:getx", "dir:gets", "dir:upgrade")
_INSTANTS = ("tus:delay", "tus:relinquish", "tus:reissue", "mshr:full",
             "dirent:evict", "dirent:conflict", "busy")


def _meta(pid: int, name: str, tid: Optional[int] = None,
          tname: Optional[str] = None) -> List[Dict]:
    out = [{"ph": "M", "pid": pid, "tid": 0, "ts": 0,
            "name": "process_name", "args": {"name": name}}]
    if tid is not None:
        out.append({"ph": "M", "pid": pid, "tid": tid, "ts": 0,
                    "name": "thread_name", "args": {"name": tname}})
    return out


class ChromeTraceExporter:
    """Builds the trace document from a finished run's artifacts."""

    def __init__(self, num_cores: int, workload: str = "",
                 mechanism: str = "") -> None:
        self.num_cores = num_cores
        self.workload = workload
        self.mechanism = mechanism

    # ------------------------------------------------------------------
    def export(self, events: Sequence[TraceEvent],
               records: Sequence[StoreRecord],
               samples: Sequence = ()) -> Dict:
        out: List[Dict] = []
        self._emit_metadata(out)
        unauth, txns = self._index(events)
        for record in records:
            self._emit_store(out, record, unauth, txns)
        self._emit_transactions(out, events)
        self._emit_counters(out, samples)
        self._emit_instants(out, events)
        return {
            "traceEvents": out,
            "displayTimeUnit": "ns",
            "otherData": {
                "workload": self.workload,
                "mechanism": self.mechanism,
                "generator": "repro.observe",
            },
        }

    # ------------------------------------------------------------------
    def _emit_metadata(self, out: List[Dict]) -> None:
        for core in range(self.num_cores):
            out.extend(_meta(core + 1, f"core{core}"))
            out.extend(_meta(core + 1, f"core{core}", TID_PIPE, "pipeline"))
            out.extend(_meta(core + 1, f"core{core}", TID_SB,
                             "store buffer"))
            out.extend(_meta(core + 1, f"core{core}", TID_POSTSB,
                             "post-SB (WCB/WOQ/TSOB)"))
        out.extend(_meta(PID_MEMSYS, "memsys+directory"))
        for core in range(self.num_cores):
            out.extend(_meta(PID_MEMSYS, "memsys+directory", core + 1,
                             f"requests core{core}"))

    @staticmethod
    def _index(events: Sequence[TraceEvent]
               ) -> Tuple[Dict, Dict]:
        """Index unauthorized writes and transaction starts by
        (core, line) for the per-store flow stitching."""
        unauth: Dict[Tuple[int, int], List[int]] = {}
        txns: Dict[Tuple[int, int], List[int]] = {}
        for ev in events:
            if ev.name == "tus:write-unauth":
                unauth.setdefault((ev.core, ev.args["line"]),
                                  []).append(ev.cycle)
            elif ev.name in _TXN_STARTS:
                txns.setdefault((ev.args["requester"], ev.args["line"]),
                                []).append(ev.cycle)
        return unauth, txns

    @staticmethod
    def _first_in(cycles: Optional[List[int]], lo: int,
                  hi: int) -> Optional[int]:
        if not cycles:
            return None
        for cycle in cycles:
            if lo <= cycle <= hi:
                return cycle
        return None

    def _emit_store(self, out: List[Dict], record: StoreRecord,
                    unauth: Dict, txns: Dict) -> None:
        pid = record.core + 1
        uid = f"s{record.core}.{record.seq}"
        line = f"{record.line:#x}"
        args = {"seq": record.seq, "line": line}
        # Async lifecycle slices (overlap-safe).
        out.append({"ph": "b", "cat": "store", "id": uid, "pid": pid,
                    "tid": TID_SB, "ts": record.dispatch, "name": "in-SB",
                    "args": args})
        out.append({"ph": "e", "cat": "store", "id": uid, "pid": pid,
                    "tid": TID_SB, "ts": record.sbexit, "name": "in-SB"})
        if record.visible > record.sbexit:
            out.append({"ph": "b", "cat": "store", "id": uid, "pid": pid,
                        "tid": TID_POSTSB, "ts": record.sbexit,
                        "name": "post-SB", "args": args})
            out.append({"ph": "e", "cat": "store", "id": uid, "pid": pid,
                        "tid": TID_POSTSB, "ts": record.visible,
                        "name": "post-SB"})
        # Flow arrows: SB exit -> unauthorized write -> visibility ->
        # the directory transaction that resolved the line.
        steps = [(pid, TID_SB, record.sbexit)]
        hit = self._first_in(unauth.get((record.core, record.line)),
                             record.sbexit, record.visible)
        if hit is not None:
            steps.append((pid, TID_POSTSB, hit))
        txn = self._first_in(txns.get((record.core, record.line)),
                             record.dispatch, record.visible)
        if txn is not None:
            steps.append((PID_MEMSYS, pid, txn))
        steps.append((pid, TID_POSTSB if record.visible > record.sbexit
                      else TID_SB, record.visible))
        steps.sort(key=lambda s: s[2])
        for index, (spid, stid, ts) in enumerate(steps):
            ph = "s" if index == 0 else (
                "f" if index == len(steps) - 1 else "t")
            step = {"ph": ph, "cat": "store-flow", "id": uid,
                    "pid": spid, "tid": stid, "ts": ts, "name": "store"}
            if ph == "f":
                step["bp"] = "e"
            out.append(step)

    def _emit_transactions(self, out: List[Dict],
                           events: Sequence[TraceEvent]) -> None:
        """Match ``dir:*`` starts to their ``fill`` and emit X slices."""
        open_txns: Dict[Tuple[int, int], List[TraceEvent]] = {}
        for ev in events:
            if ev.name in _TXN_STARTS:
                key = (ev.args["requester"], ev.args["line"])
                open_txns.setdefault(key, []).append(ev)
            elif ev.name == "fill":
                key = (ev.args["requester"], ev.args["line"])
                pending = open_txns.get(key)
                if not pending:
                    continue
                start = pending.pop(0)
                out.append({
                    "ph": "X", "pid": PID_MEMSYS,
                    "tid": start.args["requester"] + 1,
                    "ts": start.cycle,
                    "dur": max(1, ev.cycle - start.cycle),
                    "cat": "coherence",
                    "name": f"{start.name} {start.args['line']:#x}",
                    "args": {"line": f"{start.args['line']:#x}",
                             "requester": start.args["requester"]},
                })

    def _emit_counters(self, out: List[Dict], samples: Sequence) -> None:
        for sample in samples:
            for core in range(self.num_cores):
                pid = core + 1
                out.append({"ph": "C", "pid": pid, "tid": 0,
                            "ts": sample.cycle, "name": "sb_occupancy",
                            "args": {"entries": sample.sb_occ[core]}})
                out.append({"ph": "C", "pid": pid, "tid": 0,
                            "ts": sample.cycle,
                            "name": "post_sb_occupancy",
                            "args": {"entries": sample.post_sb_occ[core]}})
                out.append({"ph": "C", "pid": pid, "tid": 0,
                            "ts": sample.cycle, "name": "mshr_occupancy",
                            "args": {"entries": sample.mshr_occ[core]}})
            if sample.stalls:
                out.append({"ph": "C", "pid": PID_MEMSYS, "tid": 0,
                            "ts": sample.cycle, "name": "stall_cycles",
                            "args": {reason: cycles for reason, cycles
                                     in sorted(sample.stalls.items())}})

    def _emit_instants(self, out: List[Dict],
                       events: Sequence[TraceEvent]) -> None:
        for ev in events:
            if ev.name not in _INSTANTS:
                continue
            pid = PID_MEMSYS if ev.core is None else ev.core + 1
            args = {k: (f"{v:#x}" if k in ("line", "page") else v)
                    for k, v in ev.args.items()}
            out.append({"ph": "i", "s": "t", "pid": pid,
                        "tid": TID_POSTSB if ev.core is not None else 0,
                        "ts": ev.cycle, "cat": "protocol",
                        "name": ev.name, "args": args})


def validate_chrome_trace(doc: Dict) -> List[str]:
    """Structural validation of an exported document.

    Returns a list of problems (empty when the document is a valid
    Chrome trace-event JSON as far as the keys Perfetto requires go:
    ``ph``/``ts``/``pid``/``tid`` on every event, known phase codes,
    ``dur`` on X slices, balanced async begin/end pairs).
    """
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents missing or empty"]
    open_async: Dict[Tuple, int] = {}
    for index, ev in enumerate(events):
        for key in ("ph", "pid", "tid", "name", "ts"):
            if key not in ev:
                problems.append(f"event {index}: missing {key!r}")
                break
        else:
            ph = ev["ph"]
            if ph not in _PHASES:
                problems.append(f"event {index}: unknown ph {ph!r}")
            elif ph == "X" and "dur" not in ev:
                problems.append(f"event {index}: X slice without dur")
            elif ph in ("b", "e"):
                key = (ev.get("cat"), ev.get("id"), ev["name"])
                open_async[key] = open_async.get(key, 0) + \
                    (1 if ph == "b" else -1)
    for key, depth in open_async.items():
        if depth != 0:
            problems.append(f"unbalanced async slice {key}")
    return problems
