"""The store-lifecycle tracker.

Stitches per-store bus events into the journey the paper's Figure 4
describes: dispatch (SB allocation) -> commit -> SB exit -> global
visibility, with the unauthorized-residency window (TUS) tracked per
cache line.  The output is a set of latency histograms plus the raw
per-store records, which the Perfetto exporter turns into timeline
slices and flow arrows.

The segment histograms are *exactly* consistent by construction: for
every completed store,

    (commit - dispatch) + (sbexit - commit) + (visible - sbexit)
        == visible - dispatch

so ``segment_total() == total_latency()`` on any trace — the internal
reconciliation :meth:`~repro.observe.tracer.Tracer.reconcile` checks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..common.stats import StatGroup
from .bus import TraceBus, TraceEvent

#: Event names that mean "these lines just became globally visible at
#: this core".  ``store:visible`` covers the write-hit paths (baseline,
#: SPB, CSB group writes, SSB L1-resident drains), ``woq:visible`` the
#: TUS visibility pops, and ``tsob:drain`` the SSB L2-only drains.
#: Completion removes the pending record, so overlapping names for the
#: same line are harmless no-ops.
VISIBILITY_EVENTS = ("store:visible", "woq:visible", "tsob:drain")


class StoreRecord:
    """One store's timestamps (cycles), filled in as events arrive."""

    __slots__ = ("core", "seq", "line", "dispatch", "commit", "sbexit",
                 "visible")

    def __init__(self, core: int, seq: int, line: int,
                 dispatch: int) -> None:
        self.core = core
        self.seq = seq
        self.line = line
        self.dispatch = dispatch
        self.commit: Optional[int] = None
        self.sbexit: Optional[int] = None
        self.visible: Optional[int] = None

    @property
    def complete(self) -> bool:
        return (self.commit is not None and self.sbexit is not None
                and self.visible is not None)


class LifecycleTracker:
    """Subscribes to a :class:`TraceBus` and aggregates store journeys."""

    def __init__(self, bucket_width: int = 16, num_buckets: int = 64,
                 keep_records: bool = True) -> None:
        self.stats = StatGroup("lifecycle")
        kw = dict(bucket_width=bucket_width, num_buckets=num_buckets)
        self.h_commit = self.stats.histogram(
            "dispatch_to_commit", desc="cycles from dispatch to retire",
            **kw)
        self.h_sb = self.stats.histogram(
            "commit_to_sbexit", desc="cycles committed in the SB", **kw)
        self.h_post = self.stats.histogram(
            "sbexit_to_visible",
            desc="cycles between SB exit and global visibility", **kw)
        self.h_total = self.stats.histogram(
            "dispatch_to_visible", desc="full store lifecycle", **kw)
        self.h_unauth = self.stats.histogram(
            "unauthorized_residency",
            desc="cycles a line held unauthorized data (TUS)", **kw)
        self.keep_records = keep_records
        self.completed: List[StoreRecord] = []
        #: (core, seq) -> in-flight record.
        self._open: Dict[Tuple[int, int], StoreRecord] = {}
        #: (core, line) -> records drained from the SB, awaiting visibility.
        self._awaiting: Dict[Tuple[int, int], List[StoreRecord]] = {}
        #: (core, line) -> cycle the line first went unauthorized.
        self._unauth_since: Dict[Tuple[int, int], int] = {}
        self.dropped = 0   # events for stores we never saw dispatch

    def attach(self, bus: TraceBus) -> None:
        bus.subscribe(self.on_event)

    # ------------------------------------------------------------------
    def on_event(self, ev: TraceEvent) -> None:
        name = ev.name
        if name == "store:dispatch":
            key = (ev.core, ev.args["seq"])
            self._open[key] = StoreRecord(ev.core, ev.args["seq"],
                                          ev.args["line"], ev.cycle)
        elif name == "store:commit":
            record = self._open.get((ev.core, ev.args["seq"]))
            if record is None:
                self.dropped += 1
                return
            record.commit = ev.cycle
        elif name == "store:sbexit":
            record = self._open.pop((ev.core, ev.args["seq"]), None)
            if record is None:
                self.dropped += 1
                return
            record.sbexit = ev.cycle
            self._awaiting.setdefault(
                (ev.core, record.line), []).append(record)
        elif name == "tus:write-unauth":
            self._unauth_since.setdefault((ev.core, ev.args["line"]),
                                          ev.cycle)
        elif name in VISIBILITY_EVENTS:
            lines = ev.args.get("lines")
            if lines is None:
                lines = (ev.args["line"],)
            for line in lines:
                self._complete_line(ev.core, line, ev.cycle)

    def _complete_line(self, core: int, line: int, cycle: int) -> None:
        since = self._unauth_since.pop((core, line), None)
        if since is not None:
            self.h_unauth.sample(cycle - since)
        records = self._awaiting.pop((core, line), None)
        if not records:
            return
        for record in records:
            record.visible = cycle
            self._sample(record)

    def _sample(self, record: StoreRecord) -> None:
        commit = record.commit if record.commit is not None \
            else record.sbexit
        self.h_commit.sample(commit - record.dispatch)
        self.h_sb.sample(record.sbexit - commit)
        self.h_post.sample(record.visible - record.sbexit)
        self.h_total.sample(record.visible - record.dispatch)
        if self.keep_records:
            self.completed.append(record)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget aggregated history (measurement-region begin); stores
        currently in flight keep their timestamps and complete normally."""
        self.stats.reset()
        self.completed = []
        self.dropped = 0

    @property
    def in_flight(self) -> int:
        """Stores seen dispatching but not yet visible."""
        return len(self._open) + sum(
            len(records) for records in self._awaiting.values())

    def segment_total(self) -> int:
        """Summed cycles over the three lifecycle segments."""
        return (self.h_commit.total + self.h_sb.total + self.h_post.total)

    def total_latency(self) -> int:
        """Summed dispatch-to-visible cycles (must equal
        :meth:`segment_total`)."""
        return self.h_total.total

    def breakdown(self) -> Dict[str, float]:
        """Mean cycles per segment, for the text summary."""
        return {
            "stores": self.h_total.count,
            "dispatch_to_commit": self.h_commit.mean,
            "commit_to_sbexit": self.h_sb.mean,
            "sbexit_to_visible": self.h_post.mean,
            "dispatch_to_visible": self.h_total.mean,
            "unauthorized_residency": self.h_unauth.mean,
        }
