"""repro.observe: simulator-wide tracing and timeline export.

Zero-overhead-when-disabled instrumentation: every component holds a
falsy :data:`~repro.observe.bus.NULL_PROBE` until a :class:`Tracer` is
attached, so untraced runs pay one attribute load plus a truth test per
would-be event and allocate nothing.  See ``docs/observability.md``.
"""

from .bus import EVENTS, NULL_PROBE, NullProbe, Probe, TraceBus, TraceEvent
from .lifecycle import LifecycleTracker, StoreRecord, VISIBILITY_EVENTS
from .perfetto import ChromeTraceExporter, validate_chrome_trace
from .sampler import IntervalSampler, Sample, post_sb_occupancy
from .tracer import Tracer

__all__ = [
    "EVENTS", "NULL_PROBE", "NullProbe", "Probe", "TraceBus",
    "TraceEvent", "LifecycleTracker", "StoreRecord", "VISIBILITY_EVENTS",
    "ChromeTraceExporter", "validate_chrome_trace", "IntervalSampler",
    "Sample", "post_sb_occupancy", "Tracer",
]
