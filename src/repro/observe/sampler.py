"""Interval time-series sampling of simulator occupancies and stalls.

Produces a time-series of SB / post-SB (WCB+WOQ / TSOB) / MSHR
occupancy per core, plus per-interval dispatch-stall attribution, by
piggybacking on the trace bus: whenever an emitted event crosses an
interval boundary a sample row is recorded.  The simulator's
event-driven fast-forward means wall-quiet stretches produce no rows —
the stall cycles charged across them land in the row that closes the
gap, so the *sums* stay exact even though row spacing is irregular.

Stall attribution consumes the ``stall`` events the
:class:`~repro.cpu.stall.StallAccount` probes emit; summed over all
rows (plus the final flush) it equals the end-of-run stall-taxonomy
counters exactly — the reconciliation
:meth:`~repro.observe.tracer.Tracer.reconcile` asserts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .bus import TraceBus, TraceEvent


class Sample:
    """One time-series row."""

    __slots__ = ("cycle", "sb_occ", "post_sb_occ", "mshr_occ", "stalls")

    def __init__(self, cycle: int, sb_occ: Tuple[int, ...],
                 post_sb_occ: Tuple[int, ...], mshr_occ: Tuple[int, ...],
                 stalls: Dict[str, int]) -> None:
        self.cycle = cycle
        self.sb_occ = sb_occ
        self.post_sb_occ = post_sb_occ
        self.mshr_occ = mshr_occ
        self.stalls = stalls

    def to_dict(self) -> Dict:
        return {"cycle": self.cycle, "sb": list(self.sb_occ),
                "post_sb": list(self.post_sb_occ),
                "mshr": list(self.mshr_occ),
                "stalls": dict(sorted(self.stalls.items()))}


def post_sb_occupancy(mechanism) -> int:
    """Entries held by a mechanism's post-SB structures (duck-typed:
    WCB file and/or WOQ for TUS/CSB, the TSOB for SSB, 0 for baseline
    and SPB, which have none)."""
    occupancy = 0
    wcb = getattr(mechanism, "wcb", None)
    if wcb is not None:
        occupancy += len(wcb)
    controller = getattr(mechanism, "controller", None)
    if controller is not None:
        occupancy += len(controller.woq)
    tsob = getattr(mechanism, "_tsob", None)
    if tsob is not None:
        occupancy += len(tsob)
    return occupancy


class IntervalSampler:
    """Record occupancy/stall rows roughly every ``interval`` cycles."""

    def __init__(self, system, interval: int = 1000) -> None:
        if interval < 1:
            raise ValueError("sampling interval must be positive")
        self.system = system
        self.interval = interval
        self.samples: List[Sample] = []
        self._pending_stalls: Dict[str, int] = {}
        self._next_boundary = interval
        self._finalized = False

    def attach(self, bus: TraceBus) -> None:
        bus.subscribe(self.on_event)

    # ------------------------------------------------------------------
    def on_event(self, ev: TraceEvent) -> None:
        if ev.name == "stall":
            reason = ev.args["reason"]
            self._pending_stalls[reason] = (
                self._pending_stalls.get(reason, 0) + ev.args["cycles"])
        elif ev.name == "measure:begin":
            self.reset(ev.cycle)
            return
        if ev.cycle >= self._next_boundary:
            self._record(ev.cycle)
            self._next_boundary = (
                ev.cycle - ev.cycle % self.interval + self.interval)

    def _record(self, cycle: int) -> None:
        cores = self.system.cores
        ports = self.system.memsys.ports
        self.samples.append(Sample(
            cycle,
            tuple(len(core.sb) for core in cores),
            tuple(post_sb_occupancy(core.mechanism) for core in cores),
            tuple(len(port.mshrs) for port in ports),
            dict(self._pending_stalls)))
        self._pending_stalls = {}

    def reset(self, cycle: int) -> None:
        """Discard warmup-region rows (statistics were just reset)."""
        self.samples = []
        self._pending_stalls = {}
        self._next_boundary = cycle - cycle % self.interval + self.interval

    def finalize(self, end_cycle: Optional[int] = None) -> None:
        """Flush the last partial interval (idempotent)."""
        if self._finalized:
            return
        self._finalized = True
        cycle = end_cycle if end_cycle is not None else self.system.cycle
        self._record(cycle)

    # ------------------------------------------------------------------
    def stall_totals(self) -> Dict[str, int]:
        """Stall cycles per reason summed over every recorded row."""
        totals: Dict[str, int] = {}
        for sample in self.samples:
            for reason, cycles in sample.stalls.items():
                totals[reason] = totals.get(reason, 0) + cycles
        for reason, cycles in self._pending_stalls.items():
            totals[reason] = totals.get(reason, 0) + cycles
        return totals

    def peak(self, series: str) -> int:
        """Peak summed-over-cores occupancy of ``series``
        (``sb``/``post_sb``/``mshr``)."""
        attr = {"sb": "sb_occ", "post_sb": "post_sb_occ",
                "mshr": "mshr_occ"}[series]
        return max((sum(getattr(s, attr)) for s in self.samples),
                   default=0)
