"""The instrumentation bus: zero-overhead-when-disabled event probes.

Every instrumented component (core, SB, WOQ, TUS controller, memory
system, MSHRs, directory, ...) holds a ``probe`` attribute that defaults
to the module-level :data:`NULL_PROBE`.  Call sites guard emission with
the probe's truthiness::

    if self.probe:
        self.probe.emit(cycle, "store:dispatch", seq=entry.seq, ...)

``NULL_PROBE`` is falsy, so the disabled fast path is one attribute load
plus a truth test — no event objects, no bus dispatch, no per-cycle
branching anywhere in the simulator's run loop.  Attaching a
:class:`~repro.observe.tracer.Tracer` swaps the probes for live ones
bound to a :class:`TraceBus`; detaching restores ``NULL_PROBE``.

This module is a dependency leaf: it imports nothing from the rest of
the package, so any simulator layer may import it without cycles.

Event vocabulary
----------------

Event names are short ``topic:action`` strings.  Coherence-transaction
names deliberately reuse the :class:`~repro.common.events.EventQueue`
label vocabulary (``dir:getx``, ``fill``, ``poll``, ``busy``) so a trace
reads the same way as the model checker's human-readable schedules.
:data:`EVENTS` documents every name the built-in instrumentation emits.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

#: Every event name the built-in instrumentation emits, with the fields
#: it carries.  The exporters treat unknown names generically, so
#: downstream tools may add their own without touching this table.
EVENTS: Dict[str, str] = {
    # store lifecycle (per-store; `seq` is the SB sequence number)
    "store:dispatch": "store entered the SB (seq, line, occupancy)",
    "store:commit": "store retired from the ROB (seq, line)",
    "store:sbexit": "store drained from the SB head (seq, line, occupancy)",
    "store:visible": "lines became globally visible (lines)",
    # dispatch stalls
    "stall": "dispatch stalled (reason, cycles)",
    # mechanism structures
    "wcb:flush": "WCB groups flushed toward the L1D (groups, lines)",
    "drain:blocked": "SB head blocked waiting for write permission (line)",
    "tsob:drain": "SSB TSOB head drained one store (line)",
    "spb:burst": "SPB issued a page burst (page)",
    "prefetch:commit": "write-permission prefetch at commit (line)",
    # WOQ / TUS controller
    "woq:alloc": "WOQ entry allocated (line, group, occupancy)",
    "woq:merge": "cycle merge unified groups (group, entries)",
    "woq:visible": "head atomic group made visible (lines, group)",
    "tus:write-unauth": "store written to L1D without permission (line)",
    "tus:write-auth": "store written to a line with permission (line)",
    "tus:delay": "external request answered DELAY (line, requester)",
    "tus:relinquish": "line's write permission given up (line)",
    "tus:reissue": "deferred GetX re-requested (line)",
    "auth:check": "lex-order decision taken (line, delay, relinquish, deps)",
    # coherence transactions (names shared with EventQueue labels)
    "dir:gets": "GetS reached the directory (line, requester)",
    "dir:getx": "GetX reached the directory (line, requester)",
    "dir:upgrade": "Upgrade reached the directory (line, requester)",
    "busy": "directory entry busy; transaction retried (line, requester)",
    "poll": "DELAY re-poll scheduled (line, requester, target)",
    "snoop": "remote cache snooped (line, kind, target, result)",
    "data": "data supplied (line, source: c2c|l3|dram)",
    "fill": "fill installed at the requester (line, requester, latency)",
    # directory bookkeeping
    "dirent:alloc": "directory entry allocated (line)",
    "dirent:evict": "directory entry evicted for capacity (line)",
    "dirent:conflict": "directory set full of busy lines (line)",
    # MSHRs
    "mshr:alloc": "MSHR allocated (line, write, occupancy)",
    "mshr:full": "MSHR allocation refused (line)",
    "mshr:complete": "MSHR retired (line, latency, occupancy)",
    # run phases
    "measure:begin": "warmup ended; statistics reset",
}


class TraceEvent:
    """One emitted event: (cycle, name, source, core, payload)."""

    __slots__ = ("cycle", "name", "source", "core", "args")

    def __init__(self, cycle: int, name: str, source: str,
                 core: Optional[int], args: Dict) -> None:
        self.cycle = cycle
        self.name = name
        self.source = source
        self.core = core
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.source if self.core is None else \
            f"{self.source}@c{self.core}"
        return f"TraceEvent({self.cycle} {self.name} {where} {self.args})"


class NullProbe:
    """The disabled probe: falsy, and ``emit`` is a no-op.

    A single module-level instance (:data:`NULL_PROBE`) is shared by
    every component so the disabled state allocates nothing.
    """

    __slots__ = ()
    enabled = False

    def __bool__(self) -> bool:
        return False

    def emit(self, cycle: int, name: str, **args) -> None:
        """No-op; exists so unguarded calls still work."""


#: The shared disabled probe every instrumented component starts with.
NULL_PROBE = NullProbe()


class Probe:
    """A live probe bound to one source component on one bus."""

    __slots__ = ("_bus", "source", "core")
    enabled = True

    def __init__(self, bus: "TraceBus", source: str,
                 core: Optional[int] = None) -> None:
        self._bus = bus
        self.source = source
        self.core = core

    def __bool__(self) -> bool:
        return True

    def emit(self, cycle: int, name: str, **args) -> None:
        self._bus.publish(TraceEvent(cycle, name, self.source,
                                     self.core, args))


class TraceBus:
    """Fan-out hub: probes publish, subscribers consume synchronously.

    Subscribers are plain callables taking one :class:`TraceEvent`; they
    run in subscription order on the emitting call stack, so they must
    never mutate simulator state.
    """

    def __init__(self) -> None:
        self._subscribers: List[Callable[[TraceEvent], None]] = []
        self.published = 0

    def probe(self, source: str, core: Optional[int] = None) -> Probe:
        """Create a live probe bound to this bus."""
        return Probe(self, source, core)

    def subscribe(self, fn: Callable[[TraceEvent], None]) -> None:
        self._subscribers.append(fn)

    def publish(self, event: TraceEvent) -> None:
        self.published += 1
        for fn in self._subscribers:
            fn(event)
