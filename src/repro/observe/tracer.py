"""The tracer: probe attachment, event log, summaries, reconciliation.

:class:`Tracer` is the one-stop orchestrator: point it at a built
:class:`~repro.sim.system.System` *before* running, and it

* swaps every component's ``NULL_PROBE`` for a live probe on one
  :class:`~repro.observe.bus.TraceBus` (``detach()`` restores them);
* keeps the raw event log (optionally capped);
* feeds a :class:`~repro.observe.lifecycle.LifecycleTracker` and an
  :class:`~repro.observe.sampler.IntervalSampler`;
* renders the Chrome-trace document and a human text summary;
* cross-checks the derived views against the simulator's own counters
  (:meth:`reconcile`).

The system is accessed duck-typed (``cores``, ``memsys``, ``cycle``)
so this module needs no simulator imports and the low-level modules can
import :mod:`repro.observe.bus` without cycles.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .bus import NULL_PROBE, TraceBus, TraceEvent
from .lifecycle import LifecycleTracker
from .perfetto import ChromeTraceExporter
from .sampler import IntervalSampler


class Tracer:
    """Attach/detach live probes over a system and collect its events."""

    def __init__(self, system, interval: int = 1000,
                 max_events: Optional[int] = None,
                 keep_records: bool = True) -> None:
        self.system = system
        self.bus = TraceBus()
        self.events: List[TraceEvent] = []
        self.max_events = max_events
        self.truncated = 0
        self.lifecycle = LifecycleTracker(keep_records=keep_records)
        self.lifecycle.attach(self.bus)
        self.sampler = IntervalSampler(system, interval=interval)
        self.sampler.attach(self.bus)
        self.bus.subscribe(self._log)
        self._probed: List[object] = []
        self._attached = False

    # ------------------------------------------------------------------
    def _log(self, ev: TraceEvent) -> None:
        if ev.name == "measure:begin":
            self.events = []
            self.truncated = 0
            self.lifecycle.reset()
            return
        if self.max_events is not None and \
                len(self.events) >= self.max_events:
            self.truncated += 1
            return
        self.events.append(ev)

    def _probe(self, component, source: str,
               core: Optional[int] = None) -> None:
        if component is None:
            return
        component.probe = self.bus.probe(source, core)
        self._probed.append(component)

    def attach(self) -> "Tracer":
        """Install live probes on every instrumented component."""
        if self._attached:
            return self
        self._attached = True
        system = self.system
        self._probe(system, "system")
        for cid, core in enumerate(system.cores):
            self._probe(core, "core", cid)
            self._probe(core.sb, "sb", cid)
            self._probe(core.stalls, "stalls", cid)
            mech = core.mechanism
            self._probe(mech, "mech", cid)
            controller = getattr(mech, "controller", None)
            if controller is not None:
                self._probe(controller, "tus", cid)
                self._probe(controller.woq, "woq", cid)
        memsys = system.memsys
        self._probe(memsys, "memsys")
        self._probe(getattr(memsys, "directory", None), "directory")
        for cid, port in enumerate(memsys.ports):
            self._probe(port, "port", cid)
            self._probe(getattr(port, "mshrs", None), "mshr", cid)
        return self

    def detach(self) -> None:
        """Restore every probed component to the shared null probe."""
        for component in self._probed:
            component.probe = NULL_PROBE
        self._probed = []
        self._attached = False

    def finalize(self) -> None:
        """Flush the sampler's last partial interval (idempotent)."""
        self.sampler.finalize(self.system.cycle)

    # ------------------------------------------------------------------
    def chrome_trace(self, workload: str = "",
                     mechanism: str = "") -> Dict:
        """Export everything collected as a Chrome trace-event document."""
        self.finalize()
        exporter = ChromeTraceExporter(len(self.system.cores),
                                       workload=workload,
                                       mechanism=mechanism)
        return exporter.export(self.events, self.lifecycle.completed,
                               self.sampler.samples)

    def reconcile(self) -> Dict[str, bool]:
        """Cross-check derived views against the simulator's counters.

        * ``lifecycle``: the three segment histograms sum exactly to the
          dispatch-to-visible histogram (consistency of the stitching);
        * ``stalls``: the sampler's per-interval stall attribution sums
          exactly to every core's :class:`StallAccount` taxonomy — both
          are driven by the same ``charge`` calls and both reset at
          ``measure:begin``, so any divergence means lost events.
        """
        self.finalize()
        lifecycle_ok = (self.lifecycle.segment_total()
                        == self.lifecycle.total_latency())
        taxonomy: Dict[str, int] = {}
        for core in self.system.cores:
            for reason, cycles in core.stalls.breakdown().items():
                if cycles:
                    taxonomy[reason] = taxonomy.get(reason, 0) + cycles
        stalls_ok = self.sampler.stall_totals() == taxonomy
        return {"lifecycle": lifecycle_ok, "stalls": stalls_ok,
                "ok": lifecycle_ok and stalls_ok}

    def summary(self) -> str:
        """Human-readable recap of what the trace captured."""
        self.finalize()
        lines = [
            "trace summary",
            f"  events captured      {len(self.events)}"
            + (f" (+{self.truncated} truncated)" if self.truncated else ""),
            f"  stores completed     {self.lifecycle.h_total.count}",
            f"  stores in flight     {self.lifecycle.in_flight}",
            f"  sample rows          {len(self.sampler.samples)}",
        ]
        bd = self.lifecycle.breakdown()
        lines.append("  lifecycle means (cycles)")
        for key in ("dispatch_to_commit", "commit_to_sbexit",
                    "sbexit_to_visible", "dispatch_to_visible",
                    "unauthorized_residency"):
            lines.append(f"    {key:<24s} {bd[key]:8.2f}")
        totals = self.sampler.stall_totals()
        if totals:
            lines.append("  stall attribution (cycles)")
            for reason, cycles in sorted(totals.items()):
                lines.append(f"    {reason:<24s} {cycles:8d}")
        checks = self.reconcile()
        lines.append(
            "  reconciliation       lifecycle="
            f"{'ok' if checks['lifecycle'] else 'MISMATCH'}"
            f" stalls={'ok' if checks['stalls'] else 'MISMATCH'}")
        return "\n".join(lines)
