"""The paper's contribution: WOQ, atomic groups, authorization, TUS control."""

from .authorization import AuthorizationUnit, Decision
from .tus_controller import TUSController
from .woq import WOQEntry, WriteOrderingQueue

__all__ = ["AuthorizationUnit", "Decision", "TUSController", "WOQEntry",
           "WriteOrderingQueue"]
