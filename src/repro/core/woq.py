"""The Write Ordering Queue (WOQ).

The WOQ is the structure TUS adds (Section IV): a small circular buffer
that records the order in which unauthorized cache lines must be made
visible to the rest of the system to preserve x86-TSO.  Each entry
tracks (paper Figure 6):

* the L1D location of the line (we key by line address; hardware uses a
  10-bit set/way pointer — the information content is the same),
* the atomic-group id (entries of one group become visible together),
* a byte mask of locally written data (used to combine with the memory
  copy when write permission arrives),
* a ``CanCycle`` bit — cleared while an external conflict is being
  resolved so the group composition cannot change under the
  authorization unit,
* a ``Ready`` bit — set when permission has arrived and the data has
  been combined; cleared again if the line is relinquished.

Atomic groups are contiguous runs of WOQ entries (a cycle merge copies
the group id onto every entry between the hit entry and the tail, and
WCB flushes append whole groups), so visibility pops whole runs from
the head.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional

from ..common.addr import line_addr
from ..common.stats import StatGroup
from ..observe.bus import NULL_PROBE


class WOQEntry:
    """One tracked unauthorized (or ready-but-not-visible) cache line."""

    __slots__ = ("line", "group", "mask", "ready", "can_cycle", "deferred",
                 "request_outstanding")

    def __init__(self, line: int, group: int, mask: int) -> None:
        self.line = line
        self.group = group
        self.mask = mask
        self.ready = False
        self.can_cycle = True
        #: The line was relinquished; its write-permission re-request is
        #: deferred until it is the lex-least missing line of the head
        #: group (Section III-C).
        self.deferred = False
        #: A GetX for this line is currently in flight.
        self.request_outstanding = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = ("R" if self.ready else "-") + ("c" if self.can_cycle else "!")
        return f"WOQ({self.line:#x} g{self.group} {flags})"


class WriteOrderingQueue:
    """FIFO of WOQ entries with atomic-group operations."""

    def __init__(self, capacity: int, stats: Optional[StatGroup] = None) -> None:
        if capacity < 1:
            raise ValueError("WOQ needs at least one entry")
        self.capacity = capacity
        self._entries: Deque[WOQEntry] = deque()
        self._by_line: Dict[int, WOQEntry] = {}
        self._next_group = 0
        stats = stats if stats is not None else StatGroup("woq")
        self.stats = stats
        self._allocs = stats.counter("allocations")
        self._searches = stats.counter(
            "searches", "WOQ searches (store L1D hits + external requests)")
        self._merges = stats.counter("group_merges", "cycle merges")
        self._visible_groups = stats.counter(
            "visible_groups", "atomic groups made visible")
        self._visible_lines = stats.counter(
            "visible_lines", "cache lines made visible")
        self._full_stalls = stats.counter(
            "full_stalls", "writes delayed because the WOQ was full")
        self._occupancy = stats.histogram(
            "occupancy", bucket_width=4, num_buckets=32)
        self.probe = NULL_PROBE

    # -- capacity / lookup -----------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    @property
    def empty(self) -> bool:
        return not self._entries

    def room_for(self, lines: int) -> bool:
        """Can ``lines`` new entries be allocated right now?"""
        has_room = len(self._entries) + lines <= self.capacity
        if not has_room:
            self._full_stalls.inc()
        return has_room

    def find(self, addr: int) -> Optional[WOQEntry]:
        """Search the WOQ for the entry tracking ``addr``'s line."""
        self._searches.inc()
        return self._by_line.get(line_addr(addr))

    def contains(self, addr: int) -> bool:
        return line_addr(addr) in self._by_line

    def get_quiet(self, addr: int) -> Optional[WOQEntry]:
        """Lookup without counting a search (internal bookkeeping, not a
        modelled hardware access)."""
        return self._by_line.get(line_addr(addr))

    # -- allocation / merging -----------------------------------------------
    def new_group_id(self) -> int:
        self._next_group += 1
        return self._next_group - 1

    def append(self, line: int, mask: int, group: Optional[int] = None,
               cycle: Optional[int] = None) -> WOQEntry:
        """Allocate an entry at the tail; caller checks :meth:`room_for`.

        Each line starts as its own atomic group unless ``group`` places
        it in an existing one (WCB flushes append whole groups).
        """
        line = line_addr(line)
        if line in self._by_line:
            raise ValueError(f"line {line:#x} already tracked by the WOQ")
        if len(self._entries) >= self.capacity:
            raise OverflowError("WOQ overflow")
        entry = WOQEntry(line, group if group is not None
                         else self.new_group_id(), mask)
        self._entries.append(entry)
        self._by_line[line] = entry
        self._allocs.inc()
        self._occupancy.sample(len(self._entries))
        if self.probe:
            self.probe.emit(cycle if cycle is not None else 0,
                            "woq:alloc", line=line, group=entry.group,
                            occupancy=len(self._entries))
        return entry

    def merge_to_tail(self, entry: WOQEntry,
                      cycle: Optional[int] = None) -> List[WOQEntry]:
        """Cycle merge: make ``entry`` and everything younger one group.

        Copies ``entry``'s group id onto every entry between it and the
        tail (Section IV) and returns the affected entries.
        """
        idx = self._index_of(entry)
        affected = [self._entries[i] for i in range(idx, len(self._entries))]
        for other in affected:
            other.group = entry.group
        self._merges.inc()
        if self.probe:
            self.probe.emit(cycle if cycle is not None else 0,
                            "woq:merge", group=entry.group,
                            entries=len(affected))
        return affected

    def group_size_after_merge(self, entry: WOQEntry) -> int:
        """Size the atomic group would have after a cycle merge at
        ``entry`` (everything from ``entry`` to the tail, plus the older
        members of ``entry``'s current group)."""
        idx = self._index_of(entry)
        older_same_group = sum(
            1 for i in range(idx) if self._entries[i].group == entry.group)
        return older_same_group + (len(self._entries) - idx)

    def _index_of(self, entry: WOQEntry) -> int:
        for i, candidate in enumerate(self._entries):
            if candidate is entry:
                return i
        raise ValueError("entry not in WOQ")

    # -- ordering queries ----------------------------------------------------
    def older_entries(self, entry: WOQEntry,
                      inclusive: bool = True) -> List[WOQEntry]:
        """Entries from the head up to ``entry`` (WOQ order)."""
        out: List[WOQEntry] = []
        for candidate in self._entries:
            if candidate is entry:
                if inclusive:
                    out.append(candidate)
                return out
            out.append(candidate)
        raise ValueError("entry not in WOQ")

    def head_group(self) -> List[WOQEntry]:
        """The entries of the atomic group at the head (contiguous run)."""
        if not self._entries:
            return []
        group = self._entries[0].group
        out = []
        for entry in self._entries:
            if entry.group != group:
                break
            out.append(entry)
        return out

    def head_group_ready(self) -> bool:
        head = self.head_group()
        return bool(head) and all(entry.ready for entry in head)

    # -- visibility -----------------------------------------------------------
    def pop_head_group(self) -> List[WOQEntry]:
        """Remove and return the head atomic group (being made visible)."""
        group = self.head_group()
        for entry in group:
            self._entries.popleft()
            del self._by_line[entry.line]
        if group:
            self._visible_groups.inc()
            self._visible_lines.inc(len(group))
        return group

    def lines(self) -> Iterable[int]:
        return list(self._by_line)
