"""The TUS L1D-side controller.

This is the paper's operation flow (Figure 7) made executable: it writes
atomic groups of committed stores into the L1D *without* write
permission, tracks them in the WOQ, combines arriving permissions, makes
groups visible in x86-TSO order, and answers external requests through
the authorization unit (delay or relinquish).

The controller owns the policy; the mechanics of cache arrays, MSHRs
and coherence transactions belong to :mod:`repro.coherence.memsys`,
which calls back through ``fill_hook`` / ``snoop_hook``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..common.addr import lex_conflict, line_addr, set_index
from ..common.config import SystemConfig
from ..common.errors import SimulationError
from ..common.stats import StatGroup
from ..coherence.memsys import CorePort
from ..coherence.msgs import SnoopKind, SnoopReply, SnoopResult
from ..mem.cacheline import CacheLine, State
from ..observe.bus import NULL_PROBE
from .authorization import AuthorizationUnit, Decision
from .woq import WOQEntry, WriteOrderingQueue

#: An atomic group handed to :meth:`TUSController.write_group`:
#: (line address, byte mask) pairs.
Group = Sequence[Tuple[int, int]]


class TUSController:
    """Unauthorized-store handling for one core's L1D."""

    def __init__(self, config: SystemConfig, port: CorePort,
                 stats: StatGroup) -> None:
        self.config = config
        self.tus = config.tus
        self.port = port
        self.woq = WriteOrderingQueue(config.tus.woq_entries,
                                      stats.child("woq"))
        self.auth = AuthorizationUnit(
            self.woq, config.tus.unsound_authorization)
        self.stats = stats
        self._c_unauth_writes = stats.counter(
            "unauthorized_writes", "stores written to L1D without permission")
        self._c_auth_writes = stats.counter(
            "authorized_writes", "stores written to lines with permission")
        self._c_group_blocked = stats.counter(
            "group_blocked", "group writes delayed (ways/WOQ/can-cycle)")
        self._c_relinquished = stats.counter(
            "relinquished_lines", "lines whose permission was given up")
        self._c_delayed = stats.counter(
            "delayed_requests", "external requests answered DELAY")
        self._c_reissues = stats.counter(
            "permission_reissues", "deferred GetX re-requests")
        port.fill_hook = self._on_fill
        port.snoop_hook = self._on_snoop
        self._now = 0
        self.probe = NULL_PROBE

    # ------------------------------------------------------------------
    # Write path (Figure 7, left side)
    # ------------------------------------------------------------------
    def can_accept(self, group: Group) -> bool:
        """Can this atomic group be written to the L1D right now?

        All-or-nothing (Section III-B): every line needs either an
        existing L1D entry or a free way in its set, the WOQ needs room
        for every new line, merged groups may not exceed the configured
        maximum, and no involved entry may have its CanCycle bit cleared
        (a conflict resolution is in progress).
        """
        if len(group) > self.tus.max_atomic_group:
            self._c_group_blocked.inc()
            return False
        new_lines = 0
        ways_needed: dict = {}
        merge_targets: List[WOQEntry] = []
        for addr, _mask in group:
            line = self.port.l1d.probe(addr)
            if line is None:
                new_lines += 1
                idx = set_index(addr, self.port.l1d.config.num_sets)
                ways_needed[idx] = ways_needed.get(idx, 0) + 1
            elif line.not_visible:
                entry = self.woq.find(addr)
                if entry is None:
                    raise SimulationError(
                        f"not-visible line {addr:#x} missing from WOQ")
                if not entry.can_cycle:
                    self._c_group_blocked.inc()
                    return False
                merge_targets.append(entry)
            else:
                new_lines += 1   # visible line: re-enters the WOQ
        if not self.woq.room_for(new_lines):
            self._c_group_blocked.inc()
            return False
        line_shift = 6
        for set_idx, needed in ways_needed.items():
            if self.port.l1d.free_ways(set_idx << line_shift) < needed:
                self._c_group_blocked.inc()
                return False
        if merge_targets:
            oldest = self.woq.older_entries(merge_targets[0])[-1]
            for target in merge_targets:
                if len(self.woq.older_entries(target)) < len(
                        self.woq.older_entries(oldest)):
                    oldest = target
            merged = self.woq.group_size_after_merge(oldest) + new_lines
            if merged > self.tus.max_atomic_group:
                self._c_group_blocked.inc()
                return False
        return True

    def can_accept_all(self, groups: Sequence[Group]) -> bool:
        """Cumulative :meth:`can_accept` over several groups written in
        the same flush: the WOQ room and the free ways consumed by the
        earlier groups must be reserved before checking the later ones."""
        if not all(self.can_accept(group) for group in groups):
            return False
        total_new = 0
        ways_needed: dict = {}
        for group in groups:
            for addr, _mask in group:
                line = self.port.l1d.probe(addr)
                if line is None:
                    idx = set_index(addr, self.port.l1d.config.num_sets)
                    ways_needed[idx] = ways_needed.get(idx, 0) + 1
                    total_new += 1
                elif not line.not_visible:
                    total_new += 1
        if not self.woq.room_for(total_new):
            self._c_group_blocked.inc()
            return False
        for idx, needed in ways_needed.items():
            if self.port.l1d.free_ways(idx << 6) < needed:
                self._c_group_blocked.inc()
                return False
        return True

    def write_group(self, group: Group, cycle: int) -> None:
        """Write an atomic group into the L1D (caller checked
        :meth:`can_accept` in the same cycle)."""
        self._now = cycle
        merge_entry = self._oldest_merge_target(group)
        if merge_entry is not None:
            self.woq.merge_to_tail(merge_entry, cycle)
            group_id = merge_entry.group
        else:
            group_id = self.woq.new_group_id()
        for addr, mask in group:
            self._write_line(line_addr(addr), mask, group_id, cycle)
        self._try_make_visible(cycle)

    def _oldest_merge_target(self, group: Group) -> Optional[WOQEntry]:
        oldest = None
        oldest_pos = None
        for addr, _mask in group:
            line = self.port.l1d.probe(addr)
            if line is not None and line.not_visible:
                entry = self.woq.find(addr)
                pos = len(self.woq.older_entries(entry))
                if oldest_pos is None or pos < oldest_pos:
                    oldest, oldest_pos = entry, pos
        return oldest

    def _write_line(self, addr: int, mask: int, group_id: int,
                    cycle: int) -> None:
        line = self.port.l1d.probe(addr)
        if line is not None and line.not_visible:
            # A store cycle: merge into the existing entry.
            entry = self.woq.find(addr)
            entry.mask |= mask
            line.write_mask |= mask
            self.port.l1d.record_write()
            self._c_unauth_writes.inc()
            if self.probe:
                self.probe.emit(cycle, "tus:write-unauth", line=addr)
            return
        if line is None:
            line = self.port.l1d.allocate(
                addr, State.I, cycle, on_evict=self.port._evict_from_l1)
        entry = self.woq.append(addr, mask, group_id, cycle)
        line.write_mask |= mask
        line.not_visible = True
        self.port.l1d.record_write()
        if line.state >= State.E:
            # Case 2 of Section III-A: authorized write.  A modified line
            # must first push its current (visible) data to the L2 so a
            # valid authorized copy survives.
            if line.dirty:
                self.port.update_l2(addr)
            line.state = State.M
            line.ready = True
            entry.ready = True
            self._c_auth_writes.inc()
            if self.probe:
                self.probe.emit(cycle, "tus:write-auth", line=addr)
            return
        # Unauthorized: request write permission; the fill hook combines.
        line.ready = False
        self._c_unauth_writes.inc()
        if self.probe:
            self.probe.emit(cycle, "tus:write-unauth", line=addr)
        self._request_permission(entry, cycle)

    # ------------------------------------------------------------------
    # Permission arrival (Figure 7, middle)
    # ------------------------------------------------------------------
    def _on_fill(self, addr: int, line: CacheLine, cycle: int) -> None:
        entry = self.woq.find(addr)
        if entry is None:
            raise SimulationError(
                f"permission arrived for untracked line {addr:#x}")
        entry.ready = True
        entry.request_outstanding = False
        self._try_make_visible(cycle)
        self._reissue_deferred(cycle)

    def _try_make_visible(self, cycle: int) -> None:
        while self.woq.head_group_ready():
            published = []
            for entry in self.woq.pop_head_group():
                line = self.port.l1d.probe(entry.line)
                if line is None:
                    raise SimulationError(
                        f"visible pop lost line {entry.line:#x}")
                # Bulk reset: the line joins the coherent world.
                line.not_visible = False
                line.ready = False
                line.write_mask = 0
                if line.state < State.E:
                    raise SimulationError(
                        f"making {entry.line:#x} visible without permission")
                line.state = State.M
                published.append(entry.line)
            if published and self.probe:
                self.probe.emit(cycle, "woq:visible",
                                lines=list(published))
            if published and self.port.visibility_hook is not None:
                self.port.visibility_hook(published, cycle)
        self._reissue_deferred(cycle)

    def _reissue_deferred(self, cycle: int) -> None:
        # Covers both relinquished (deferred) lines and lines whose
        # original GetX was dropped because the MSHR file was full.
        target = self.auth.reissue_target()
        if target is None:
            return
        self._c_reissues.inc()
        if self.probe:
            self.probe.emit(cycle, "tus:reissue", line=target.line)
        target.deferred = False
        self._request_permission(target, cycle)

    def _request_permission(self, entry: WOQEntry, cycle: int) -> None:
        """Issue (or re-issue) the GetX for ``entry``, with a self-retry
        when the MSHR file refuses the request."""
        if entry.ready or entry.request_outstanding:
            return
        if self.port.request_write(entry.line, cycle):
            entry.request_outstanding = True
            return
        retry = cycle + 4
        self.port.system.events.schedule(
            retry, lambda: self._retry_permission(entry.line, retry),
            label=f"tus-retry:{entry.line:#x}", actor=self.port.core_id)

    def _retry_permission(self, line: int, cycle: int) -> None:
        entry = self.woq.get_quiet(line)
        if entry is None or entry.ready or entry.request_outstanding \
                or entry.deferred:
            return
        self._request_permission(entry, cycle)

    # ------------------------------------------------------------------
    # External requests (Figure 7, right side / Section III-C)
    # ------------------------------------------------------------------
    def _on_snoop(self, addr: int, kind: SnoopKind, requester: int,
                  cycle: int) -> SnoopReply:
        entry = self.woq.find(addr)
        if entry is None:
            raise SimulationError(
                f"snoop consulted TUS for untracked line {addr:#x}")
        decision = self.auth.check(addr, cycle)
        # Freeze the group composition while the conflict resolves.
        for member in self.woq:
            if member.group == entry.group:
                member.can_cycle = False
        if decision.delay:
            self._c_delayed.inc()
            if self.probe:
                self.probe.emit(cycle, "tus:delay", line=addr,
                                requester=requester)
            return SnoopReply(SnoopResult.DELAY)
        relinquish = list(decision.relinquish)
        if entry.ready and entry not in relinquish:
            # The requested line itself always gives up its permission
            # when the request cannot be delayed.
            relinquish.append(entry)
        for victim in relinquish:
            self._relinquish(victim, cycle)
        self._reissue_deferred(cycle)
        line = self.port.l1d.probe(addr)
        if entry in relinquish or not line.state:
            # The requester is served the unmodified copy held by our
            # (inclusive) private L2; our unauthorized data stays local.
            self.port.l2.invalidate(addr)
            return SnoopReply(SnoopResult.RELINQUISH_OLD_DATA)
        # The entry never had permission here (e.g. an S copy being
        # upgraded elsewhere): acknowledge, drop the stale copies, keep
        # the unauthorized data.
        line.state = State.I
        self.port.l2.invalidate(addr)
        return SnoopReply(SnoopResult.ACK)

    def _relinquish(self, entry: WOQEntry,
                    cycle: Optional[int] = None) -> None:
        line = self.port.l1d.probe(entry.line)
        if line is None:
            raise SimulationError(
                f"relinquishing untracked line {entry.line:#x}")
        entry.ready = False
        entry.deferred = True
        entry.request_outstanding = False
        line.ready = False
        line.state = State.I
        self.port.l2.invalidate(entry.line)
        self._c_relinquished.inc()
        if self.probe:
            self.probe.emit(cycle if cycle is not None else self._now,
                            "tus:relinquish", line=entry.line)

    # ------------------------------------------------------------------
    @property
    def drained(self) -> bool:
        return self.woq.empty

    def next_wake(self, cycle: int) -> Optional[int]:
        return None
