"""The authorization unit: lex-order conflict resolution.

When an external request reaches a not-visible line, every core must
agree — without communication — on who proceeds and who relinquishes
(Section III-C).  The agreement comes from the global lexicographical
order of cache-line addresses (the low 16 bits, shared with the
directory index):

* the core *delays* the request if it already holds write permission for
  every line of lesser-or-equal lex order among the WOQ entries the
  requested line's visibility depends on — those can become visible
  with no external help, so forward progress is guaranteed;
* otherwise the core *relinquishes*: every ready entry in that
  dependency set whose lex order is greater than the lex-least missing
  permission gives its permission up (the requester is served the
  unmodified copy from the private L2), keeping only a lex-prefix of
  permissions — which is exactly the set that can never participate in
  a cross-core cycle.

The dependency set is every entry from the WOQ head through the *end of
the requested entry's atomic group* (groups are contiguous runs and
become visible all-or-nothing), so it includes same-group members
younger than the requested line.  Considering only older-or-equal
entries is unsound: core A can delay a request for line R because
everything older is ready while R's own group still waits on a younger
member held by core B — which is itself delaying because of a line A
holds.  The lex comparison over the full dependency set breaks such
cycles (any chain of delays follows strictly increasing lex order).

This module is pure policy: it inspects the WOQ and returns a decision;
the TUS controller applies it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..common.addr import lex_order, line_addr
from ..observe.bus import NULL_PROBE
from .woq import WOQEntry, WriteOrderingQueue


@dataclass
class Decision:
    """Outcome of the authorization check for one external request."""

    #: True: the request is delayed (re-polled) until the line is visible.
    delay: bool
    #: Entries whose write permission must be relinquished (empty when
    #: delaying).
    relinquish: List[WOQEntry] = field(default_factory=list)


class AuthorizationUnit:
    """Pure combinational lex-order check over WOQ contents.

    ``unsound_dependency_set`` reverts to the pre-fix rule (dependency
    set = older-or-equal entries only).  It exists solely so the model
    checker can reproduce the livelock the sound rule prevents; see
    :attr:`repro.common.config.TUSConfig.unsound_authorization`.
    """

    def __init__(self, woq: WriteOrderingQueue,
                 unsound_dependency_set: bool = False) -> None:
        self.woq = woq
        self.unsound_dependency_set = unsound_dependency_set
        self.probe = NULL_PROBE

    def check(self, addr: int, cycle: Optional[int] = None) -> Decision:
        """Decide how to answer an external request for ``addr``.

        ``addr``'s line must currently be tracked by the WOQ (the caller
        only consults the unit for not-visible lines).
        """
        line = line_addr(addr)
        entry = self.woq.find(line)
        if entry is None:
            raise ValueError(f"{line:#x} is not tracked by the WOQ")
        deps = self._dependency_set(entry)
        req_lex = lex_order(line)
        missing = [e for e in deps if not e.ready]
        min_missing_lex = min((lex_order(e.line) for e in missing),
                              default=None)
        if entry.ready and (min_missing_lex is None
                            or min_missing_lex > req_lex):
            # We hold permission for every line of lesser-or-equal lex
            # order that the entry's visibility depends on: those groups
            # complete without external help, so the request can safely
            # wait for us.
            decision = Decision(delay=True)
        elif min_missing_lex is None:
            # The entry itself lacks permission but everything it
            # depends on is ready: nothing to relinquish beyond
            # acknowledging.
            decision = Decision(delay=False, relinquish=[])
        else:
            give_up = [e for e in deps
                       if e.ready and lex_order(e.line) > min_missing_lex]
            decision = Decision(delay=False, relinquish=give_up)
        if self.probe:
            self.probe.emit(cycle if cycle is not None else 0,
                            "auth:check", line=line,
                            delay=decision.delay,
                            relinquish=len(decision.relinquish),
                            deps=len(deps))
        return decision

    def _dependency_set(self, entry: WOQEntry) -> List[WOQEntry]:
        """Every entry whose readiness gates ``entry``'s visibility:
        the head through the end of ``entry``'s atomic group (groups are
        contiguous runs popped all-or-nothing, so younger same-group
        members count too)."""
        if self.unsound_dependency_set:
            # The buggy pre-fix rule: ignore younger same-group members.
            return self.woq.older_entries(entry)
        deps: List[WOQEntry] = []
        past = False
        for candidate in self.woq:
            if past and candidate.group != entry.group:
                break
            deps.append(candidate)
            if candidate is entry:
                past = True
        return deps

    def reissue_target(self) -> Optional[WOQEntry]:
        """The line whose deferred permission request should be re-sent.

        A relinquished line re-requests only once it is the lex-least
        line among the missing permissions of the *head* atomic group
        (Section III-C's anti-ping-pong rule).
        """
        head = self.woq.head_group()
        missing = [e for e in head
                   if not e.ready and not e.request_outstanding]
        if not missing:
            return None
        return min(missing, key=lambda e: lex_order(e.line))
