"""Benchmark definition, timing protocol, and the suite registry.

A :class:`Benchmark` owns a ``factory`` that builds one deterministic
unit of work: ``factory(quick)`` returns a zero-argument callable that
performs the work and returns a value.  The value feeds an optional
``meta_fn`` whose output (fingerprints, state counts, op counts) is
recorded next to the timings — that is how the macro benchmarks prove
that a faster kernel still simulates the *same machine*.

The timing protocol is fixed for every benchmark: ``warmup`` untimed
calls (JIT-free CPython still benefits — branch predictors, page cache,
lazily materialised caches), then ``trials`` timed calls, summarised by
:func:`repro.bench.stats.summarize`.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

from .stats import summarize

#: Default protocol: enough trials for a meaningful median/MAD while
#: keeping the full suite in CI territory.
DEFAULT_WARMUP = 1
DEFAULT_TRIALS = 5


class BenchResult:
    """Timings and metadata of one benchmark execution."""

    def __init__(self, name: str, suite: str, quick: bool, warmup: int,
                 samples: List[float], meta: Dict[str, Any]) -> None:
        self.name = name
        self.suite = suite
        self.quick = quick
        self.warmup = warmup
        self.samples = samples
        self.meta = meta
        self.summary = summarize(samples)

    @property
    def median(self) -> float:
        return self.summary["median"]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "suite": self.suite,
            "quick": self.quick,
            "warmup": self.warmup,
            "trials": len(self.samples),
            "samples": self.samples,
            **self.summary,
            "meta": self.meta,
        }


class Benchmark:
    """One named, deterministic, repeatable timing experiment."""

    def __init__(self, name: str, suite: str, description: str,
                 factory: Callable[[bool], Callable[[], Any]],
                 meta_fn: Optional[Callable[[Any], Dict[str, Any]]] = None
                 ) -> None:
        self.name = name
        self.suite = suite
        self.description = description
        self.factory = factory
        self.meta_fn = meta_fn

    def run(self, quick: bool = False, warmup: int = DEFAULT_WARMUP,
            trials: int = DEFAULT_TRIALS) -> BenchResult:
        work = self.factory(quick)
        value = None
        for _ in range(warmup):
            value = work()
        samples: List[float] = []
        perf_counter = time.perf_counter
        for _ in range(trials):
            start = perf_counter()
            value = work()
            samples.append(perf_counter() - start)
        meta = self.meta_fn(value) if self.meta_fn is not None else {}
        return BenchResult(self.name, self.suite, quick, warmup,
                           samples, meta)


def all_benchmarks(suite: str = "all") -> List[Benchmark]:
    """The registered benchmarks, optionally restricted to one suite."""
    from . import macro, micro
    benches: List[Benchmark] = list(micro.BENCHMARKS)
    benches.extend(macro.BENCHMARKS)
    if suite == "all":
        return benches
    return [b for b in benches if b.suite == suite]
