"""Suite orchestration: run, report, persist, and compare.

A *report* is the machine-readable document ``repro bench --json``
writes (``BENCH_4.json`` at the repo root is the committed baseline):

.. code-block:: json

    {
      "version": 1,
      "environment": {"python": "...", "platform": "...", "commit": "..."},
      "protocol": {"warmup": 1, "trials": 5, "quick": false},
      "benchmarks": [
        {"name": "micro.event_queue", "suite": "micro", "samples": [...],
         "min": 0.01, "median": 0.011, "mad": 0.0002, "meta": {...}},
        ...
      ]
    }

Comparison is median-vs-median per benchmark name with a relative
threshold.  Medians are robust to one bad sample, and the generous
default threshold (25%) absorbs host-to-host variance — the check is a
tripwire for algorithmic regressions (accidental O(n log n) -> O(n²)),
not a micro-optimisation police.  Benchmarks whose ``quick`` flags
differ are skipped: quick and full workloads are not comparable.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from typing import Any, Dict, List, Optional

from .registry import (DEFAULT_TRIALS, DEFAULT_WARMUP, BenchResult,
                       all_benchmarks)

#: Relative median slowdown tolerated before the check fails.
DEFAULT_THRESHOLD = 0.25

REPORT_VERSION = 1


def _git_commit() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)))
    except subprocess.TimeoutExpired:
        # A hung git (stale lock, dead NFS) must not hang or kill the
        # bench run; the report records the probe failure explicitly so
        # a missing commit is distinguishable from a non-repo checkout.
        return "unavailable:timeout"
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def environment() -> Dict[str, Any]:
    """Host metadata stored with every report, for apples-to-apples
    judgement when comparing two files."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "commit": _git_commit(),
    }


def run_suite(suite: str = "all", quick: bool = False,
              warmup: int = DEFAULT_WARMUP,
              trials: int = DEFAULT_TRIALS,
              progress=None) -> Dict[str, Any]:
    """Run the selected benchmarks and return the report dict."""
    if suite not in ("micro", "macro", "all"):
        raise ValueError(f"unknown suite {suite!r}")
    results: List[BenchResult] = []
    failures: List[Dict[str, Any]] = []
    for bench in all_benchmarks(suite):
        if progress is not None:
            progress(bench)
        try:
            results.append(bench.run(quick=quick, warmup=warmup,
                                     trials=trials))
        except Exception as exc:  # noqa: BLE001 - one bad benchmark
            # must not cost the rest of the suite its results; the
            # failure is reported structurally instead.
            failures.append({"name": bench.name,
                             "error": f"{type(exc).__name__}: {exc}"})
    report = {
        "version": REPORT_VERSION,
        "environment": environment(),
        "protocol": {"warmup": warmup, "trials": trials, "quick": quick},
        "benchmarks": [result.as_dict() for result in results],
    }
    if failures:
        report["failures"] = failures
    return report


def write_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=False)
        handle.write("\n")


def load_report(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        report = json.load(handle)
    if report.get("version") != REPORT_VERSION:
        raise ValueError(
            f"{path}: unsupported report version {report.get('version')!r}")
    return report


def render_table(report: Dict[str, Any]) -> str:
    """Human-readable summary of one report."""
    env = report["environment"]
    proto = report["protocol"]
    lines = [
        f"python {env['python']} on {env['machine']} "
        f"(commit {env['commit'] or 'unknown'})"
        + ("  [quick]" if proto["quick"] else ""),
        f"{'benchmark':26} {'min':>10} {'median':>10} {'mad':>9}  notes",
    ]
    for bench in report["benchmarks"]:
        meta = bench.get("meta", {})
        if "fingerprint" in meta:
            note = f"fp {meta['fingerprint'][:12]}"
        elif meta:
            key, value = next(iter(meta.items()))
            note = f"{key}={value}"
        else:
            note = ""
        lines.append(
            f"{bench['name']:26} {bench['min'] * 1e3:9.2f}ms "
            f"{bench['median'] * 1e3:9.2f}ms {bench['mad'] * 1e3:8.3f}ms"
            f"  {note}")
    return "\n".join(lines)


def compare_reports(current: Dict[str, Any], baseline: Dict[str, Any],
                    threshold: float = DEFAULT_THRESHOLD
                    ) -> List[Dict[str, Any]]:
    """Return one record per benchmark slower than baseline allows.

    Records carry ``name``, both medians, and the ratio; an empty list
    means the check passes.  Only benchmarks present in both reports
    with the same ``quick`` setting are compared.
    """
    base_by_name = {b["name"]: b for b in baseline["benchmarks"]}
    regressions: List[Dict[str, Any]] = []
    for bench in current["benchmarks"]:
        base = base_by_name.get(bench["name"])
        if base is None or base.get("quick") != bench.get("quick"):
            continue
        if base["median"] <= 0:
            continue
        ratio = bench["median"] / base["median"]
        if ratio > 1.0 + threshold:
            regressions.append({
                "name": bench["name"],
                "baseline_median": base["median"],
                "current_median": bench["median"],
                "ratio": ratio,
            })
    return regressions
