"""Micro-benchmarks: the simulation kernel's isolated hot paths.

Each benchmark exercises one data structure the profiler shows on the
hot path of a full simulation — the event queue, the L1D lookup loop,
the store-buffer insert/forward/drain cycle, and the address helpers —
with a pinned pseudo-random workload, so a regression localises to the
structure that slowed down rather than to "the simulator".

All seeds are fixed module constants; every call of a benchmark's work
function performs the identical operation sequence.
"""

from __future__ import annotations

import random
from typing import Callable, List

from ..common.addr import lex_order, line_addr, mask_bytes, word_mask
from ..common.config import table_i
from ..common.events import EventQueue
from ..common.stats import StatGroup
from ..cpu.isa import OpKind, UOp
from ..cpu.storebuffer import StoreBuffer
from ..mem.cache import CacheArray
from ..mem.cacheline import State
from .registry import Benchmark

#: One pinned seed per benchmark so their streams stay independent.
SEED_EVENTS = 0x7E5_01
SEED_CACHE = 0x7E5_02
SEED_SB = 0x7E5_03
SEED_ADDR = 0x7E5_04

_LINE = 64


def _ops(quick: bool, full: int, small: int) -> int:
    return small if quick else full


def _bench_event_queue(quick: bool) -> Callable[[], int]:
    ops = _ops(quick, 20_000, 2_000)
    rng = random.Random(SEED_EVENTS)
    # Latency-shaped offsets: most events land a fixed small latency
    # ahead (cache hops), a tail lands far ahead (DRAM) — the bucket
    # distribution the wheel is optimised for.
    offsets = [rng.choice((2, 4, 12, 12, 12, 38, 38, 300))
               for _ in range(ops)]
    cancel_every = 7

    def work() -> int:
        events = EventQueue()
        fired = [0]

        def callback() -> None:
            fired[0] += 1

        cycle = 0
        pending = []
        for index, offset in enumerate(offsets):
            pending.append(events.schedule(cycle + offset, callback))
            if index % cancel_every == 0:
                pending[len(pending) // 2].cancel()
            if index % 4 == 3:
                cycle += 1
                events.run_until(cycle)
        events.run_until(cycle + 400)
        if len(events) != 0:
            raise AssertionError("event queue not drained")
        return fired[0]

    return work


def _bench_cache_lookup(quick: bool) -> Callable[[], int]:
    ops = _ops(quick, 60_000, 5_000)
    config = table_i().memory.l1d
    rng = random.Random(SEED_CACHE)
    resident = [i * _LINE for i in range(256)]
    addrs = [rng.choice(resident) if rng.random() < 0.9
             else (1 << 20) + rng.randrange(4096) * _LINE
             for _ in range(ops)]

    def work() -> int:
        cache = CacheArray(config, stats=StatGroup("bench-l1d"))
        for addr in resident:
            cache.allocate(addr, State.E)
        hits = 0
        lookup = cache.lookup
        for addr in addrs:
            if lookup(addr) is not None:
                hits += 1
        return hits

    return work


def _bench_sb_drain(quick: bool) -> Callable[[], int]:
    ops = _ops(quick, 12_000, 1_500)
    rng = random.Random(SEED_SB)
    stores = [UOp(OpKind.STORE, rng.randrange(1024) * _LINE
                  + 8 * rng.randrange(8), 8) for _ in range(ops)]
    probes = [(uop.addr, 8) for uop in stores[::3]]

    def work() -> int:
        config = table_i().core
        sb = StoreBuffer(config, stats=StatGroup("bench-sb"))
        forwarded = 0
        probe_index = 0
        for index, uop in enumerate(stores):
            entry = sb.insert(uop, index)
            entry.committed = True
            if index % 3 == 0 and probe_index < len(probes):
                addr, size = probes[probe_index]
                probe_index += 1
                if sb.search(addr, size) is not None:
                    forwarded += 1
            if sb.full or index % 5 == 4:
                while sb.head_committed() is not None:
                    sb.pop_head(index)
        while sb.head_committed() is not None:
            sb.pop_head(ops)
        return forwarded

    return work


def _bench_addr_helpers(quick: bool) -> Callable[[], int]:
    ops = _ops(quick, 80_000, 8_000)
    rng = random.Random(SEED_ADDR)
    addrs = [rng.randrange(1 << 30) & ~7 for _ in range(ops)]

    def work() -> int:
        acc = 0
        for addr in addrs:
            acc += line_addr(addr)
            acc += lex_order(addr)
            acc += mask_bytes(word_mask(addr, 8))
        return acc & 0xFFFF_FFFF

    return work


BENCHMARKS: List[Benchmark] = [
    Benchmark("micro.event_queue", "micro",
              "EventQueue schedule/cancel/run_until under a "
              "latency-shaped cycle distribution",
              _bench_event_queue,
              meta_fn=lambda fired: {"fired": fired}),
    Benchmark("micro.cache_lookup", "micro",
              "L1D CacheArray lookups, 90% hits over a resident set",
              _bench_cache_lookup,
              meta_fn=lambda hits: {"hits": hits}),
    Benchmark("micro.sb_drain", "micro",
              "StoreBuffer insert / forwarding search / head drain",
              _bench_sb_drain,
              meta_fn=lambda forwarded: {"forwarded": forwarded}),
    Benchmark("micro.addr_helpers", "micro",
              "line/lex/word-mask address arithmetic",
              _bench_addr_helpers,
              meta_fn=lambda acc: {"checksum": acc}),
]
