"""Performance-regression benchmark suite for the simulation kernel.

Wall-clock speed is *reproduction infrastructure*, not a claim of the
paper: a pure-Python cycle model only covers the paper's sweeps if each
simulated point stays cheap.  This package pins a small set of
benchmarks — micro (isolated kernel hot paths) and macro (full
simulation points with bit-stable results) — and measures them with a
statistically honest protocol: explicit warmup, repeated trials, and
min/median/MAD summaries (timing noise is one-sided, so the minimum
estimates the true cost and the MAD flags unstable hosts).

Every benchmark is deterministic: seeds are pinned, and the macro
benchmarks additionally record a SHA-256 fingerprint of the canonical
:class:`~repro.sim.results.SimResult` JSON, so a kernel "optimisation"
that changes simulated behaviour is caught by the same run that times
it.  ``repro bench`` drives the suite and ``BENCH_*.json`` files at the
repo root hold committed baselines for regression checks in CI.
"""

from .registry import Benchmark, BenchResult, all_benchmarks
from .stats import mad, median, summarize
from .suite import (DEFAULT_THRESHOLD, compare_reports, environment,
                    render_table, run_suite, write_report)

__all__ = [
    "Benchmark", "BenchResult", "all_benchmarks",
    "mad", "median", "summarize",
    "DEFAULT_THRESHOLD", "compare_reports", "environment",
    "render_table", "run_suite", "write_report",
]
