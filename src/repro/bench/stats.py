"""Robust summary statistics for timing samples.

Timing noise on a shared host is one-sided: a sample can only be slowed
down by interference, never sped up below the true cost.  The suite
therefore reports the *minimum* (best estimate of the true cost), the
*median* (typical cost, robust to a few outliers — this is what the
regression check compares), and the *median absolute deviation* (MAD, a
robust spread measure that flags noisy hosts where a comparison would
be meaningless).
"""

from __future__ import annotations

from typing import Dict, Sequence


def median(values: Sequence[float]) -> float:
    """The middle sample (mean of the middle two for even counts)."""
    if not values:
        raise ValueError("median of an empty sample set")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: Sequence[float]) -> float:
    """Median absolute deviation from the median."""
    center = median(values)
    return median([abs(v - center) for v in values])


def summarize(samples: Sequence[float]) -> Dict[str, float]:
    """Return the suite's standard summary of one benchmark's samples."""
    return {
        "min": min(samples),
        "median": median(samples),
        "mad": mad(samples),
    }
