"""Macro-benchmarks: pinned end-to-end simulation points.

The points cover the distinct kernels of the repo: a single-core SPEC
simulation (core + private caches dominate), a 4-core Parsec simulation
(coherence traffic and the multi-core run loop), a 16-core Parsec
simulation on the scaled machine (mesh topology, sharded directory,
multi-channel DRAM), and one model-checker frontier slice (the
controlled scheduler and state hashing).  Configurations, trace
lengths, and seeds are pinned: the
timings are comparable across commits, and each simulation benchmark
records the SHA-256 fingerprint of its canonical result JSON — if a
kernel change alters *any* statistic of the simulated machine, the
fingerprint shifts and the benchmark run itself exposes it.
"""

from __future__ import annotations

import hashlib
from typing import Callable, List

from ..common.config import scaled_config, table_i
from ..modelcheck import explore
from ..sim.system import System
from ..workloads import make_parallel_traces, make_trace
from .registry import Benchmark

#: Every macro point uses this seed (the harness default).
SEED = 42


def _fingerprint(result) -> dict:
    digest = hashlib.sha256(result.canonical_json().encode()).hexdigest()
    return {"fingerprint": digest, "cycles": result.cycles}


def _bench_spec_single(quick: bool) -> Callable[[], object]:
    length = 5_000 if quick else 20_000
    config = table_i().with_mechanism("tus").with_sb_size(114).with_cores(1)
    trace = make_trace("502.gcc5", length, SEED)

    def work():
        return System(config, [trace], workload="502.gcc5").run()

    return work


def _bench_parsec_4core(quick: bool) -> Callable[[], object]:
    length = 1_500 if quick else 6_000
    config = table_i().with_mechanism("tus").with_sb_size(114).with_cores(4)
    traces = make_parallel_traces("canneal", 4, length, SEED)

    def work():
        return System(config, traces, workload="canneal").run()

    return work


def _bench_canneal_16(quick: bool) -> Callable[[], object]:
    # The paper's Parsec machine width: 16 cores on a mesh with a
    # 4-way-sharded directory and 2 DRAM channels (scaled_config).
    length = 400 if quick else 1_500
    config = scaled_config(16).with_mechanism("tus").with_sb_size(114)
    traces = make_parallel_traces("canneal", 16, length, SEED)

    def work():
        return System(config, traces, workload="canneal").run()

    return work


def _bench_modelcheck_slice(quick: bool) -> Callable[[], object]:
    max_states = 60 if quick else 200

    def work():
        return explore("overlap", "tus", cores=2, lines=2,
                       max_states=max_states)

    return work


def _bench_modelcheck_por(quick: bool) -> Callable[[], object]:
    max_states = 60 if quick else 400

    def work():
        return explore("disjoint", "tus", cores=3, lines=3,
                       max_states=max_states, por="persistent")

    return work


BENCHMARKS: List[Benchmark] = [
    Benchmark("macro.spec_single", "macro",
              "502.gcc5 single-core simulation point (tus, SB=114)",
              _bench_spec_single, meta_fn=_fingerprint),
    Benchmark("macro.parsec_4core", "macro",
              "canneal 4-core simulation point (tus, SB=114)",
              _bench_parsec_4core, meta_fn=_fingerprint),
    Benchmark("macro.canneal_16", "macro",
              "canneal 16-core simulation point (tus, mesh, 4 directory "
              "shards, 2 DRAM channels, SB=114)",
              _bench_canneal_16, meta_fn=_fingerprint),
    Benchmark("macro.modelcheck_slice", "macro",
              "model-checker frontier slice (overlap/tus, 2 cores)",
              _bench_modelcheck_slice,
              meta_fn=lambda r: {"unique_states": r.unique_states,
                                 "terminal_states": r.terminal_states,
                                 "executions": r.executions,
                                 "states_per_sec": r.states_per_sec}),
    Benchmark("macro.modelcheck_por", "macro",
              "model-checker slice under persistent-set partial-order "
              "reduction (disjoint/tus, 3 cores)",
              _bench_modelcheck_por,
              meta_fn=lambda r: {"unique_states": r.unique_states,
                                 "terminal_states": r.terminal_states,
                                 "executions": r.executions,
                                 "states_per_sec": r.states_per_sec,
                                 "por": r.por}),
]
