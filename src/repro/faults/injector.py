"""Wire a fault plan into a live system, and unwire it cleanly.

Mirrors the attach/detach shape of :mod:`repro.observe.tracer`: the
injector knows which components expose a ``faults`` hook — the memory
system itself, its directory and DRAM model, and each port's MSHR file —
and swaps the shared :data:`~repro.faults.plan.NULL_FAULTS` null object
for the plan (and back).  Nothing else in the simulator knows fault
injection exists.
"""

from __future__ import annotations

from .plan import FaultPlan, NULL_FAULTS


class FaultInjector:
    """Attach one :class:`FaultPlan` to one system's memory hierarchy."""

    def __init__(self, system, plan: FaultPlan) -> None:
        self.system = system
        self.plan = plan
        self._attached = False

    def _holders(self):
        mem = self.system.memsys
        yield mem
        # Every directory home shard is an injection site of its own:
        # attaching only a facade would leave dir-conflict faults dead
        # on sharded machines (Directory.shards is (self,) when the
        # directory is monolithic, so this also covers the 1-shard case).
        yield from mem.directory.shards
        yield mem.dram
        for port in mem.ports:
            yield port.mshrs

    def attach(self) -> "FaultInjector":
        if self._attached:
            raise RuntimeError("fault injector already attached")
        for holder in self._holders():
            holder.faults = self.plan
        self._attached = True
        return self

    def detach(self) -> None:
        if not self._attached:
            return
        for holder in self._holders():
            holder.faults = NULL_FAULTS
        self._attached = False

    def __enter__(self) -> "FaultInjector":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()
