"""Fault-injection campaigns: perturb, check, and diff against fault-free.

A *campaign* is one seeded experiment: build a deterministic synthetic
workload, run it twice on the same reduced configuration — once
fault-free as the reference, once with a :class:`~repro.faults.plan
.FaultPlan` attached — and require that the faulted run

1. terminates within a structurally derived cycle budget (the plan's
   boundedness makes the budget computable, not guessed),
2. violates none of the mechanism's model-check invariants (SWMR,
   tus-sync, store-order, wait-graph acyclicity, ...), evaluated after
   *every* action via the model checker's controlled run loop, and
3. produces the same derived final-memory image and per-address
   program-order commit structure as the reference run.

The differential oracle needs care because this is a timing simulator:
no data values flow, and coalescing mechanisms (CSB/TUS) publish a
timing-dependent *number* of times.  The campaign workload is therefore
**single-writer by construction** — each core stores only to its own
cache lines (loads may roam) — which makes the final memory image
schedule-independent: the final value of a line is its owner's last
program-order store, full stop.  The oracle then verifies the three
properties that pin that image down in both runs — publisher uniqueness
(only the owner ever publishes a line), completeness (every stored line
is eventually published), and Store->Store order — and compares the
derived images.  Any timing the faults perturb is free to differ;
anything architectural is not.

Campaigns fan out across worker processes like
:mod:`repro.harness.checks`; a worker that raises is recorded as an
``error`` outcome rather than killing the sweep.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..common.addr import LINE_SIZE, line_addr
from ..common.config import RetryConfig
from ..common.errors import DeadlockError
from ..common.rng import make_rng
from ..cpu.isa import alu, fence, load, store
from ..cpu.trace import Trace
from ..modelcheck.invariants import CheckContext, InvariantViolation
from ..modelcheck.scenarios import check_config
from ..modelcheck.scheduler import CheckingScheduler, DefaultScheduler
from ..sim.system import System
from ..tso.observer import VisibilityObserver
from .injector import FaultInjector
from .plan import INTENSITIES, FaultConfig, FaultPlan

#: Campaign lines live well above the scenario range so campaign and
#: model-check traffic can never alias in a shared cache model.
CAMPAIGN_BASE = 0x8_0000

#: Outcomes, from best to worst; ``ok`` is the only green one.
OUTCOMES = ("ok", "oracle-mismatch", "violation", "deadlock", "error")


@dataclass(frozen=True)
class CampaignSpec:
    """One (seed, mechanism, intensity) campaign point."""

    seed: int
    mechanism: str = "tus"
    intensity: str = "medium"
    cores: int = 2
    lines_per_core: int = 2
    ops_per_core: int = 24
    retry_policy: str = "backoff"
    # Scaled shared level (defaults keep the original reduced machine).
    topology: str = "p2p"
    dir_shards: int = 1
    dram_channels: int = 1
    link_latency: int = 1
    # Base consistency model: gates which invariants and oracle legs
    # apply (store-order is only guaranteed by TSO-like models).
    model: str = "tso"

    def label(self) -> str:
        label = (f"{self.mechanism}/{self.intensity}/seed{self.seed}"
                 f"/c{self.cores}")
        if self.dir_shards > 1 or self.topology != "p2p":
            label += f"/{self.topology}-s{self.dir_shards}"
        if self.model != "tso":
            label += f"/{self.model}"
        return label

    def fault_config(self) -> FaultConfig:
        try:
            return INTENSITIES[self.intensity]
        except KeyError:
            raise ValueError(
                f"unknown intensity {self.intensity!r}; available: "
                f"{', '.join(sorted(INTENSITIES))}") from None


@dataclass
class CampaignResult:
    """What one campaign did; JSON-plain and picklable."""

    label: str
    seed: int
    mechanism: str
    intensity: str
    outcome: str                       # one of OUTCOMES
    detail: str = ""
    cycles: int = 0
    ref_cycles: int = 0
    committed: int = 0
    ref_committed: int = 0
    total_injections: int = 0
    injections: Dict[str, Dict[str, int]] = field(default_factory=dict)
    invariant: Optional[str] = None
    dump: Optional[dict] = None        # ProgressDump.to_dict() on deadlock

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"

    def to_dict(self) -> dict:
        return {
            "label": self.label, "seed": self.seed,
            "mechanism": self.mechanism, "intensity": self.intensity,
            "outcome": self.outcome, "detail": self.detail,
            "cycles": self.cycles, "ref_cycles": self.ref_cycles,
            "committed": self.committed,
            "ref_committed": self.ref_committed,
            "total_injections": self.total_injections,
            "injections": self.injections,
            "invariant": self.invariant, "dump": self.dump,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignResult":
        return cls(**data)


# ----------------------------------------------------------------------
# Workload construction
# ----------------------------------------------------------------------

def campaign_lines(spec: CampaignSpec) -> List[List[int]]:
    """Per-core disjoint cache-line sets (the single-writer partition)."""
    lines = []
    for cid in range(spec.cores):
        base = CAMPAIGN_BASE + cid * spec.lines_per_core * LINE_SIZE
        lines.append([base + i * LINE_SIZE
                      for i in range(spec.lines_per_core)])
    return lines


def build_traces(spec: CampaignSpec) -> List[Trace]:
    """Seeded single-writer workload with cross-core read sharing.

    Each core stores exclusively to its own lines (so the final memory
    image is schedule-independent) but loads both its own and other
    cores' lines — the remote loads are what drag lines through the
    directory, trigger snoops of unauthorized lines, and give the
    nack-burst / c2c-delay fault sites real traffic to perturb.
    """
    ownership = campaign_lines(spec)
    traces = []
    for cid in range(spec.cores):
        rng = make_rng(spec.seed, f"campaign:core{cid}")
        own = ownership[cid]
        remote = [addr for other, lines in enumerate(ownership)
                  if other != cid for addr in lines]
        uops = []
        for _ in range(spec.ops_per_core):
            roll = rng.random()
            if roll < 0.55:
                uops.append(store(rng.choice(own)
                                  + 8 * rng.randrange(4), 8))
            elif roll < 0.75 and remote:
                uops.append(load(rng.choice(remote)))
            elif roll < 0.85:
                uops.append(load(rng.choice(own)))
            elif roll < 0.92:
                uops.append(fence())
            else:
                uops.append(alu())
        traces.append(Trace(f"campaign{cid}", uops))
    return traces


# ----------------------------------------------------------------------
# Differential oracle
# ----------------------------------------------------------------------

def derived_image(observer: VisibilityObserver,
                  traces: Sequence[Trace]) -> Dict[int, Tuple[int, int]]:
    """The final-memory image a single-writer run determines.

    Returns ``line -> (owner core, last program-order store position)``.
    Raises :class:`AssertionError`-style ``ValueError`` when the run
    itself breaks one of the pinning properties (publisher uniqueness,
    completeness) — those are architectural failures, not mismatches.
    """
    image: Dict[int, Tuple[int, int]] = {}
    for cid, trace in enumerate(traces):
        stored: Dict[int, int] = {}
        position = 0
        for uop in trace:
            if uop.kind.is_store:
                stored[line_addr(uop.addr)] = position
            position += 1
        published = {line for _, _, line in observer.events.get(cid, ())}
        missing = sorted(set(stored) - published)
        if missing:
            raise ValueError(
                f"core {cid} never published stored lines "
                f"{[hex(a) for a in missing]}")
        foreign = sorted(published - set(stored))
        if foreign:
            raise ValueError(
                f"core {cid} published lines it never stored "
                f"{[hex(a) for a in foreign]}")
        for line, pos in stored.items():
            if line in image:
                raise ValueError(
                    f"line {line:#x} written by cores {image[line][0]} "
                    f"and {cid}: workload is not single-writer")
            image[line] = (cid, pos)
    return image


def cycle_budget(ref_cycles: int, fault_config: FaultConfig,
                 retry: RetryConfig) -> int:
    """Structural termination bound for a faulted run.

    Every injected delay adds at most ``magnitude`` cycles and every
    refusal costs at most one retry window; both are capped per site by
    ``site_budget``.  The worst case serialises every injection on the
    critical path, so the faulted run cannot legitimately need more
    than the reference plus the total perturbation (plus slack for the
    watchdog granularity).
    """
    sites = len(fault_config.sites)
    delays = fault_config.site_budget * fault_config.magnitude * sites
    refusals = fault_config.site_budget * 3 * (retry.max_delay
                                               + fault_config.magnitude)
    return ref_cycles + delays + refusals + 10_000


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------

def _make_system(spec: CampaignSpec, traces: List[Trace]
                 ) -> Tuple[System, VisibilityObserver]:
    config = check_config(spec.cores, spec.mechanism,
                          topology=spec.topology,
                          dir_shards=spec.dir_shards,
                          dram_channels=spec.dram_channels,
                          link_latency=spec.link_latency)
    if spec.retry_policy != config.retry.policy:
        import dataclasses
        config = dataclasses.replace(
            config, retry=RetryConfig(policy=spec.retry_policy,
                                      seed=spec.seed))
        config.validate()
    system = System(config, [Trace(t.name, list(t)) for t in traces],
                    workload=f"faults:{spec.label()}")
    observer = VisibilityObserver()
    observer.attach(system)
    return system, observer


def run_campaign(spec: CampaignSpec) -> CampaignResult:
    """Run one campaign point: reference, faulted, oracle."""
    traces = build_traces(spec)
    fault_config = spec.fault_config()
    result = CampaignResult(label=spec.label(), seed=spec.seed,
                            mechanism=spec.mechanism,
                            intensity=spec.intensity, outcome="ok")

    # Reference (fault-free) run.
    from ..models import get_model
    model = get_model(spec.model)
    ref_system, ref_observer = _make_system(spec, traces)
    ref = ref_system.run()
    result.ref_cycles = ref.cycles
    result.ref_committed = ref.committed
    if model.guarantees_store_order:
        for cid, trace in enumerate(traces):
            ref_observer.check_store_store_order(cid, trace)
    reference_image = derived_image(ref_observer, traces)

    # Faulted run under the invariant-checking controlled loop.
    system, observer = _make_system(spec, traces)
    plan = FaultPlan(spec.seed, fault_config)
    ctx = CheckContext(system=system, traces=traces, observer=observer)
    invariants = model.filter_invariants(
        system.cores[0].mechanism.modelcheck_invariants())
    scheduler = CheckingScheduler(DefaultScheduler(), ctx, invariants)
    budget = cycle_budget(ref.cycles, fault_config, system.config.retry)
    try:
        with FaultInjector(system, plan):
            faulted = system.run_controlled(scheduler, max_cycles=budget)
    except InvariantViolation as exc:
        result.outcome = "violation"
        result.invariant = exc.invariant
        result.detail = exc.message
    except DeadlockError as exc:
        result.outcome = "deadlock"
        result.detail = str(exc)
        if exc.dump is not None:
            result.dump = exc.dump.to_dict()
    else:
        result.cycles = faulted.cycles
        result.committed = faulted.committed
        try:
            faulted_image = derived_image(observer, traces)
        except ValueError as exc:
            result.outcome = "oracle-mismatch"
            result.detail = str(exc)
        else:
            if faulted_image != reference_image:
                diff = sorted(set(faulted_image.items())
                              ^ set(reference_image.items()))
                result.outcome = "oracle-mismatch"
                result.detail = (f"final-memory image diverged on "
                                 f"{len(diff)} entries: {diff[:4]}")
            elif faulted.committed != ref.committed:
                result.outcome = "oracle-mismatch"
                result.detail = (f"committed {faulted.committed} uops "
                                 f"faulted vs {ref.committed} reference")
    result.total_injections = plan.total_injections
    result.injections = plan.summary()
    return result


def _campaign_payload(spec: CampaignSpec) -> dict:
    """Worker entry point: run one campaign, return a plain dict."""
    return run_campaign(spec).to_dict()


def run_campaigns(specs: Sequence[CampaignSpec],
                  workers: int = 1) -> List[CampaignResult]:
    """Run many campaign points, optionally across worker processes.

    A worker that raises charges its point an ``error`` outcome and the
    sweep continues — campaign sweeps exist to find exactly the seeds
    that break things, so one broken seed must never hide the rest.
    Results come back in spec order.
    """
    results: List[Optional[CampaignResult]] = [None] * len(specs)

    def record_error(index: int, exc: BaseException) -> None:
        spec = specs[index]
        results[index] = CampaignResult(
            label=spec.label(), seed=spec.seed, mechanism=spec.mechanism,
            intensity=spec.intensity, outcome="error",
            detail=f"{type(exc).__name__}: {exc}")

    if workers <= 1 or len(specs) <= 1:
        for index, spec in enumerate(specs):
            try:
                results[index] = run_campaign(spec)
            except Exception as exc:  # noqa: BLE001 - recorded per point
                record_error(index, exc)
        return [r for r in results if r is not None]

    with ProcessPoolExecutor(max_workers=min(workers, len(specs))) as pool:
        pending = {pool.submit(_campaign_payload, spec): index
                   for index, spec in enumerate(specs)}
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                index = pending.pop(future)
                try:
                    results[index] = CampaignResult.from_dict(
                        future.result())
                except Exception as exc:  # noqa: BLE001 - per point
                    record_error(index, exc)
    return [r for r in results if r is not None]


def sweep_specs(seeds: Sequence[int], mechanisms: Sequence[str],
                intensities: Sequence[str],
                cores: int = 2, **kwargs) -> List[CampaignSpec]:
    """The cross product a ``repro faults`` sweep runs."""
    return [CampaignSpec(seed=seed, mechanism=mechanism,
                         intensity=intensity, cores=cores, **kwargs)
            for mechanism in mechanisms
            for intensity in intensities
            for seed in seeds]


def render_results(results: Sequence[CampaignResult]) -> str:
    """Human-readable sweep table plus a verdict line."""
    lines = [f"{'campaign':34} {'outcome':16} {'inj':>4} "
             f"{'cycles':>8} {'ref':>8}"]
    for res in results:
        lines.append(
            f"{res.label:34} {res.outcome:16} {res.total_injections:4d} "
            f"{res.cycles:8d} {res.ref_cycles:8d}"
            + (f"  {res.detail}" if res.detail and not res.ok else ""))
    bad = [r for r in results if not r.ok]
    lines.append(
        f"{len(results)} campaigns, {len(results) - len(bad)} ok, "
        f"{len(bad)} failed")
    return "\n".join(lines)
