"""Deterministic fault plans: seeded, bounded perturbation schedules.

A :class:`FaultPlan` decides, at each *injection site* the memory system
exposes, whether to perturb the current protocol step — and by how much.
Every decision is drawn from a per-site RNG stream derived from the
plan's seed (:func:`repro.common.rng.derive_seed`), so a (seed, config)
pair names exactly one perturbation schedule: replaying a failing
campaign is just re-running it with the same seed.

The plan only ever exercises the protocol's *existing legal seams* —
behaviours a slow network, a congested directory, or a full MSHR file
could produce on real hardware:

===============  ======================================================
site             perturbation
===============  ======================================================
``dir-busy``     a free directory entry is reported busy (extra retry)
``dir-conflict`` directory allocation refused (victim-NACK storm: the
                 set behaves as if every victim were vetoed)
``mshr-full``    MSHR allocation refused while entries are in flight
                 (transient exhaustion; the parked request is retried
                 at the next fill, so forward progress is preserved)
``fill-delay``   extra cycles on an L3/DRAM fill completion
``c2c-delay``    extra cycles on a cache-to-cache data forward
``dram-jitter``  extra cycles inside the DRAM access itself
``poll-jitter``  extra cycles before a DELAY re-poll
``nack-burst``   a snoop target is treated as answering DELAY even
                 though it would ACK (the snoop message is "delayed in
                 the network" and re-polled; amplifies NACK traffic on
                 back-invalidation)
===============  ======================================================

Boundedness is structural, not statistical: each site has an injection
*budget* and each delay a *magnitude* cap, so the total perturbation a
plan can add is at most ``sum(site_budget x magnitude)`` cycles — which
is what lets a campaign assert termination within a fixed cycle budget.

Like :mod:`repro.observe.bus`, the disabled state is a falsy null
object (:data:`NULL_FAULTS`) every hook holder starts with; call sites
guard with ``if self.faults:`` so the disabled fast path is one
attribute load plus a truth test and the simulated machine is
bit-identical to a build without the hook layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..common.rng import make_rng

#: Every injection site a plan may be asked about.
SITES: Tuple[str, ...] = (
    "dir-busy", "dir-conflict", "mshr-full", "fill-delay", "c2c-delay",
    "dram-jitter", "poll-jitter", "nack-burst",
)


@dataclass(frozen=True)
class FaultConfig:
    """Intensity knobs for a fault plan.

    ``rate`` is the per-opportunity injection probability, ``magnitude``
    the maximum extra cycles of one injected delay, ``burst`` the
    maximum number of consecutive forced-DELAY answers one snoop target
    absorbs, and ``site_budget`` the hard cap on injections per site.
    """

    rate: float = 0.05
    magnitude: int = 96
    burst: int = 3
    site_budget: int = 30
    sites: Tuple[str, ...] = SITES

    def validate(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate {self.rate} outside [0, 1]")
        if self.magnitude < 1 or self.burst < 1 or self.site_budget < 0:
            raise ValueError("fault magnitudes/budgets must be positive")
        unknown = set(self.sites) - set(SITES)
        if unknown:
            raise ValueError(f"unknown fault sites {sorted(unknown)}")


#: Preset intensities for campaign sweeps.
INTENSITIES: Dict[str, FaultConfig] = {
    "low": FaultConfig(rate=0.02, magnitude=32, burst=2, site_budget=12),
    "medium": FaultConfig(rate=0.05, magnitude=96, burst=3, site_budget=30),
    "high": FaultConfig(rate=0.15, magnitude=192, burst=5, site_budget=60),
}


class NullFaults:
    """The disabled plan: falsy, and every query answers "no fault".

    A single module-level instance (:data:`NULL_FAULTS`) is shared by
    every hook holder, mirroring :data:`repro.observe.bus.NULL_PROBE`.
    """

    __slots__ = ()
    enabled = False

    def __bool__(self) -> bool:
        return False

    def delay(self, site: str) -> int:
        return 0

    def refuse(self, site: str) -> bool:
        return False

    def force_delay(self, addr: int, target: int) -> bool:
        return False

    def summary(self) -> Dict[str, Dict[str, int]]:
        return {}


#: The shared disabled plan every fault-injectable component starts with.
NULL_FAULTS = NullFaults()


class FaultPlan:
    """One seeded, bounded perturbation schedule.

    Decisions are drawn in call order from per-site streams, so a fixed
    (seed, config) pair and a deterministic simulation yield the same
    injections every run — in this process or a worker process.
    """

    enabled = True

    def __init__(self, seed: int, config: FaultConfig = None) -> None:
        config = config if config is not None else FaultConfig()
        config.validate()
        self.seed = seed
        self.config = config
        self._rngs = {site: make_rng(seed, f"fault:{site}")
                      for site in config.sites}
        #: site -> injections performed (bounded by ``site_budget``).
        self.counts: Dict[str, int] = {site: 0 for site in config.sites}
        #: site -> total extra cycles injected.
        self.injected_cycles: Dict[str, int] = {site: 0
                                                for site in config.sites}
        #: (addr, target) -> remaining forced-DELAY answers.
        self._bursts: Dict[Tuple[int, int], int] = {}

    def __bool__(self) -> bool:
        return True

    # ------------------------------------------------------------------
    def _roll(self, site: str) -> bool:
        """One budgeted Bernoulli draw for ``site``."""
        rng = self._rngs.get(site)
        if rng is None or self.counts[site] >= self.config.site_budget:
            return False
        if rng.random() >= self.config.rate:
            return False
        self.counts[site] += 1
        return True

    def delay(self, site: str) -> int:
        """Extra cycles to add at ``site`` (0 = no injection)."""
        if not self._roll(site):
            return 0
        extra = self._rngs[site].randint(1, self.config.magnitude)
        self.injected_cycles[site] += extra
        return extra

    def refuse(self, site: str) -> bool:
        """Whether to refuse the resource/allocation at ``site``."""
        return self._roll(site)

    def force_delay(self, addr: int, target: int) -> bool:
        """NACK burst: answer ``target``'s snoop of ``addr`` with DELAY.

        The first query of a (line, target) pair may start a bounded
        burst; subsequent queries drain it.  Draining a burst models a
        snoop stuck behind a storm of NACKed back-invalidations; the
        re-poll machinery retries exactly as it does for a real DELAY.
        """
        key = (addr, target)
        remaining = self._bursts.get(key)
        if remaining is None:
            if not self._roll("nack-burst"):
                return False
            remaining = self._rngs["nack-burst"].randint(
                1, self.config.burst)
        remaining -= 1
        if remaining > 0:
            self._bursts[key] = remaining
        else:
            self._bursts.pop(key, None)
        return True

    # ------------------------------------------------------------------
    @property
    def total_injections(self) -> int:
        return sum(self.counts.values())

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Per-site injection bookkeeping (kept off the system's
        :class:`~repro.common.stats.StatGroup` on purpose: result
        fingerprints must not change shape when faults are enabled)."""
        return {site: {"count": self.counts[site],
                       "cycles": self.injected_cycles[site]}
                for site in self.config.sites
                if self.counts[site]}
