"""Deterministic fault injection for the coherence stack.

Only the leaf-safe pieces are exported here: :mod:`.plan` (fault plans
and the shared :data:`NULL_FAULTS` null object the memory system imports
at module load) and :mod:`.injector` (system attach/detach).  The
campaign orchestrator, workload builder, and differential oracle import
the simulator, so they are deliberately *not* re-exported — import them
as submodules (``repro.faults.campaign`` etc.) to keep
``coherence.memsys -> faults.plan`` cycle-free.
"""

from .injector import FaultInjector
from .plan import (FaultConfig, FaultPlan, INTENSITIES, NULL_FAULTS,
                   NullFaults, SITES)

__all__ = [
    "FaultConfig",
    "FaultInjector",
    "FaultPlan",
    "INTENSITIES",
    "NULL_FAULTS",
    "NullFaults",
    "SITES",
]
